//! Property tests for the sharded ingest deployment.
//!
//! The contract under test: at 1, 2, and 4 shards, for hash and range
//! partitioning, every [`MergedSnapshot`] the router cuts is
//! bit-identical to the single-engine decomposition oracle on the exact
//! event prefix it claims to cover — for arbitrary event soups (dirty:
//! duplicates, self-loops, out-of-range ids), for BA + churn streams
//! whose promotion/dismissal seed components cross shards, and across a
//! per-shard crash + recovery.

use kcore_decomp::core_decomposition;
use kcore_graph::{DynamicGraph, HashShardMap, RangeShardMap, ShardMap};
use kcore_ingest::sources::{apply_events, churn_events};
use kcore_ingest::{GraphEvent, IngestConfig, ShardRouter};
use proptest::prelude::*;
use std::sync::Arc;

fn oracle_cores(base: &DynamicGraph, events: &[GraphEvent]) -> Vec<u32> {
    core_decomposition(&apply_events(base, events))
}

fn arb_base(n: u32, max_edges: usize) -> impl Strategy<Value = DynamicGraph> {
    prop::collection::vec((0..n, 0..n), 0..max_edges).prop_map(move |pairs| {
        let mut g = DynamicGraph::with_vertices(n as usize);
        for (a, b) in pairs {
            if a != b && !g.has_edge(a, b) {
                g.insert_edge_unchecked(a, b);
            }
        }
        g
    })
}

/// Checks one merged cut against the oracle on its covered prefix.
fn assert_cut_matches(
    cut: &kcore_ingest::MergedSnapshot,
    base: &DynamicGraph,
    events: &[GraphEvent],
) -> Result<(), TestCaseError> {
    let prefix = oracle_cores(base, &events[..cut.ops as usize]);
    prop_assert_eq!(
        cut.cores.to_vec(),
        prefix.clone(),
        "merged cores diverge from the oracle at epoch {}",
        cut.epoch
    );
    let degeneracy = prefix.iter().copied().max().unwrap_or(0);
    prop_assert_eq!(cut.degeneracy, degeneracy);
    let mut hist = vec![0usize; degeneracy as usize + 1];
    for &c in &prefix {
        hist[c as usize] += 1;
    }
    prop_assert_eq!(&cut.histogram, &hist);
    let members = cut.kcore_members(degeneracy);
    for &v in &members {
        prop_assert!(prefix[v as usize] >= degeneracy);
    }
    // Per-shard cores are lower bounds on the merged global cores.
    for s in 0..cut.shards.len() {
        for v in 0..prefix.len() as u32 {
            prop_assert!(
                cut.shard_core(s, v) <= cut.core(v),
                "shard {} core({}) exceeds the global core",
                s,
                v
            );
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// Shard maps are total (any u32, even far outside the universe),
    /// deterministic across instances, and balanced within bound over
    /// the dense universe they were sized for.
    #[test]
    fn shard_maps_are_total_deterministic_balanced(
        n in 64usize..2048,
        shards in 1usize..9,
        probes in prop::collection::vec(any::<u32>(), 1..50),
    ) {
        let hash = HashShardMap::new(shards);
        let range = RangeShardMap::for_universe(n, shards);
        for &v in &probes {
            prop_assert!(hash.owner(v) < shards);
            prop_assert!(range.owner(v) < shards);
            // Deterministic: a second instance agrees on every id.
            prop_assert_eq!(hash.owner(v), HashShardMap::new(shards).owner(v));
            prop_assert_eq!(range.owner(v), RangeShardMap::for_universe(n, shards).owner(v));
        }
        let mut hash_load = vec![0usize; shards];
        let mut range_load = vec![0usize; shards];
        for v in 0..n as u32 {
            hash_load[hash.owner(v)] += 1;
            range_load[range.owner(v)] += 1;
        }
        // Range: ±1-balanced by construction.
        let (lo, hi) = (n / shards, n.div_ceil(shards));
        for &l in &range_load {
            prop_assert!(l == lo || l == hi, "range load {} outside [{},{}]", l, lo, hi);
        }
        // Hash: within 2x + slack of fair share on a dense universe.
        for &l in &hash_load {
            prop_assert!(
                l <= 2 * hi + 16,
                "hash shard load {} vs fair share {}",
                l,
                hi
            );
        }
    }

    /// Every merged cut over an arbitrary dirty event soup equals the
    /// decomposition oracle on its covered prefix, at 1/2/4 shards,
    /// hash and range partitioned, with cuts at arbitrary boundaries.
    #[test]
    fn sharded_cuts_equal_oracle_prefixes(
        base in arb_base(18, 40),
        // ids past n: out-of-range events must be skipped identically.
        raw in prop::collection::vec((any::<bool>(), 0u32..22, 0u32..22), 1..80),
        shards in (0usize..3).prop_map(|i| [1usize, 2, 4][i]),
        use_range in any::<bool>(),
        max_batch in 1usize..6,
        cut_every in 3usize..13,
        seed in any::<u64>(),
    ) {
        let events: Vec<GraphEvent> = raw
            .iter()
            .map(|&(ins, u, v)| if ins {
                GraphEvent::EdgeInserted(u, v)
            } else {
                GraphEvent::EdgeRemoved(u, v)
            })
            .collect();
        let map: Arc<dyn ShardMap> = if use_range {
            Arc::new(RangeShardMap::for_universe(18, shards))
        } else {
            Arc::new(HashShardMap::new(shards))
        };
        let mut router = ShardRouter::spawn(
            base.clone(),
            map,
            seed,
            IngestConfig::scripted().max_batch(max_batch),
        )
        .unwrap();

        let mut last_epoch = 0u64;
        let mut last_shard_epochs = vec![0u64; shards];
        for (i, &e) in events.iter().enumerate() {
            router.submit(e).unwrap();
            if i % cut_every == cut_every - 1 {
                let cut = router.merged_cut().unwrap();
                prop_assert_eq!(cut.ops, i as u64 + 1, "cut covers the full prefix");
                prop_assert!(cut.epoch > last_epoch, "merged epochs strictly increase");
                last_epoch = cut.epoch;
                for (s, &prev) in last_shard_epochs.iter().enumerate() {
                    prop_assert!(cut.shard_epochs[s] >= prev);
                }
                last_shard_epochs = cut.shard_epochs.clone();
                assert_cut_matches(&cut, &base, &events)?;
                router.validate().map_err(TestCaseError::fail)?;
            }
        }
        let cut = router.merged_cut().unwrap();
        prop_assert_eq!(cut.ops, events.len() as u64);
        assert_cut_matches(&cut, &base, &events)?;
        router.validate().map_err(TestCaseError::fail)?;

        let stats = router.stats();
        prop_assert_eq!(stats.events, events.len() as u64);
        if shards == 1 {
            prop_assert_eq!(stats.cross_shard_events, 0);
            prop_assert_eq!(stats.repair.boundary_exchanges, 0);
        }

        let (merged_report, per_shard) = router.shutdown();
        prop_assert_eq!(per_shard.len(), shards);
        let legs: u64 = per_shard.iter().map(|(r, _)| r.events).sum();
        prop_assert_eq!(merged_report.events, legs);
        prop_assert_eq!(legs, stats.events + stats.cross_shard_events);
        // Each shard engine's graph is exactly the incident-edge
        // restriction of the oracle's final graph.
        let final_graph = apply_events(&base, &events);
        for (s, (_, engine)) in per_shard.iter().enumerate() {
            use kcore_maint::CoreMaintainer;
            let g = engine.graph_ref();
            let mut expect = 0usize;
            for (u, v) in final_graph.edges() {
                let incident = router_owner(&*router_map(use_range, shards), u, v, s);
                if incident {
                    prop_assert!(g.has_edge(u, v), "shard {} missing ({},{})", s, u, v);
                    expect += 1;
                }
            }
            prop_assert_eq!(g.num_edges(), expect, "shard {} holds extra edges", s);
        }
    }
}

fn router_map(use_range: bool, shards: usize) -> Arc<dyn ShardMap> {
    if use_range {
        Arc::new(RangeShardMap::for_universe(18, shards))
    } else {
        Arc::new(HashShardMap::new(shards))
    }
}

fn router_owner(map: &dyn ShardMap, u: u32, v: u32, s: usize) -> bool {
    map.owner(u) == s || map.owner(v) == s
}

/// BA base + churn stream at 2 and 4 shards: every cut equals the
/// oracle, and over the whole run at least one promotion/dismissal seed
/// component crossed shards (boundary-pass frontier exchange observed).
#[test]
fn churn_stream_crosses_shards_and_stays_exact() {
    use kcore_gen::{barabasi_albert, churn_stream};
    for &shards in &[2usize, 4] {
        let base = barabasi_albert(60, 3, 7);
        let map: Arc<dyn ShardMap> = Arc::new(HashShardMap::new(shards));
        let mut router =
            ShardRouter::spawn(base.clone(), map, 7, IngestConfig::scripted().max_batch(8))
                .unwrap();
        let mut events: Vec<GraphEvent> = Vec::new();
        for batch in churn_stream(&base, 10, 14, 10, 13) {
            for e in churn_events(&batch) {
                events.push(e);
                router.submit(e).unwrap();
            }
            let cut = router.merged_cut().unwrap();
            assert_eq!(cut.ops, events.len() as u64);
            assert_eq!(
                cut.cores.to_vec(),
                oracle_cores(&base, &events),
                "{shards}-shard churn cut diverged at epoch {}",
                cut.epoch
            );
            router.validate().unwrap();
        }
        let stats = router.stats();
        assert!(
            stats.repair.boundary_exchanges >= 1,
            "{shards}-shard churn never exchanged a boundary frontier: {:?}",
            stats.repair
        );
        assert!(stats.repair.rounds >= 1);
        assert!(stats.cross_shard_events > 0);
        router.shutdown();
    }
}

/// Killing one shard's writer and recovering it through the durability
/// ladder leaves the merged cut consistent, with merged and per-shard
/// epochs monotone across the swap.
#[test]
fn shard_crash_recovery_composes_into_consistent_cuts() {
    use kcore_ingest::DurabilityConfig;

    let dir = std::env::temp_dir().join("kcore_shard_recovery");
    std::fs::remove_dir_all(&dir).ok();
    let shards = 2usize;
    let n = 16usize;
    let mut base = DynamicGraph::with_vertices(n);
    for v in 0..n as u32 - 1 {
        base.insert_edge_unchecked(v, v + 1);
    }
    let map: Arc<dyn ShardMap> = Arc::new(RangeShardMap::for_universe(n, shards));
    let mk_dirs: Vec<_> = (0..shards).map(|s| dir.join(format!("shard{s}"))).collect();
    for d in &mk_dirs {
        std::fs::create_dir_all(d).unwrap();
    }
    let mut router = ShardRouter::spawn_with(base.clone(), map, 3, |s| {
        IngestConfig::scripted()
            .max_batch(2)
            .durable(DurabilityConfig::in_dir(&mk_dirs[s]).snapshot_every(2))
    })
    .unwrap();

    let mut events: Vec<GraphEvent> = Vec::new();
    let submit = |router: &mut ShardRouter, events: &mut Vec<GraphEvent>, e: GraphEvent| {
        router.submit(e).unwrap();
        events.push(e);
    };
    // Cross-shard edges (7..8 spans the range boundary) plus local ones.
    for (u, v) in [(7u32, 9u32), (6, 8), (0, 2), (1, 3), (10, 12), (11, 13)] {
        submit(&mut router, &mut events, GraphEvent::EdgeInserted(u, v));
    }
    let cut1 = router.merged_cut().unwrap();
    assert_eq!(cut1.cores.to_vec(), oracle_cores(&base, &events));

    // Crash shard 1 mid-stream; traffic touching it parks in its log.
    router.abort_shard(1);
    for (u, v) in [(0u32, 3u32), (8, 10), (9, 11), (2, 4)] {
        submit(&mut router, &mut events, GraphEvent::EdgeInserted(u, v));
    }
    submit(&mut router, &mut events, GraphEvent::EdgeRemoved(7, 9));

    // A cut with a shard down must refuse rather than serve a torn view.
    assert!(router.merged_cut().is_err());

    let report = router.recover_shard(1).unwrap();
    assert!(report.durable_ops <= events.len() as u64);

    let cut2 = router.merged_cut().unwrap();
    assert_eq!(
        cut2.cores.to_vec(),
        oracle_cores(&base, &events),
        "post-recovery merged cut diverged (rung {:?})",
        report.rung
    );
    assert!(cut2.epoch > cut1.epoch, "merged epoch monotone across swap");
    for s in 0..shards {
        assert!(
            cut2.shard_epochs[s] >= cut1.shard_epochs[s],
            "shard {s} epoch regressed across recovery: {} -> {}",
            cut1.shard_epochs[s],
            cut2.shard_epochs[s]
        );
    }
    router.validate().unwrap();

    // The recovered deployment keeps ingesting correctly.
    for (u, v) in [(12u32, 14u32), (13, 15), (5, 7)] {
        submit(&mut router, &mut events, GraphEvent::EdgeInserted(u, v));
    }
    let cut3 = router.merged_cut().unwrap();
    assert_eq!(cut3.cores.to_vec(), oracle_cores(&base, &events));
    assert_eq!(cut3.ops, events.len() as u64);
    router.validate().unwrap();
    router.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}
