//! Property tests for the ingest service: an arbitrary event soup
//! (inserts + removals + duplicates + out-of-range ids), driven through
//! the scripted-clock service with arbitrary flush boundaries, must
//! (a) publish only snapshots that are bit-identical to the
//! decomposition oracle on the exact event prefix they claim to cover
//! (snapshot isolation: no torn reads at any epoch), and
//! (b) end bit-identical to the oracle over the whole soup.

use kcore_decomp::core_decomposition;
use kcore_graph::DynamicGraph;
use kcore_ingest::sources::apply_events;
use kcore_ingest::{GraphEvent, IngestConfig, IngestService};
use proptest::prelude::*;

/// Oracle: the soup applied through the shared skip-semantics model
/// (`sources::apply_events`), then decomposed from scratch.
fn oracle_cores(base: &DynamicGraph, events: &[GraphEvent]) -> Vec<u32> {
    core_decomposition(&apply_events(base, events))
}

fn arb_base(n: u32, max_edges: usize) -> impl Strategy<Value = DynamicGraph> {
    prop::collection::vec((0..n, 0..n), 0..max_edges).prop_map(move |pairs| {
        let mut g = DynamicGraph::with_vertices(n as usize);
        for (a, b) in pairs {
            if a != b && !g.has_edge(a, b) {
                g.insert_edge_unchecked(a, b);
            }
        }
        g
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Satellite: every published snapshot equals the oracle on the
    /// prefix of ops it covers, and the final state equals the oracle on
    /// the full soup — under size flushes, tick flushes, and explicit
    /// barriers mixed arbitrarily.
    #[test]
    fn event_soup_snapshots_equal_oracle_prefixes(
        base in arb_base(18, 40),
        // ids range past n: out-of-range events must be skipped
        // identically by service and oracle.
        raw in prop::collection::vec((any::<bool>(), 0u32..22, 0u32..22), 1..70),
        max_batch in 1usize..9,
        flush_every in 2usize..11,
        tick_every in 3usize..9,
        seed in any::<u64>(),
    ) {
        let events: Vec<GraphEvent> = raw
            .iter()
            .map(|&(ins, u, v)| if ins {
                GraphEvent::EdgeInserted(u, v)
            } else {
                GraphEvent::EdgeRemoved(u, v)
            })
            .collect();

        let cfg = IngestConfig::scripted()
            .max_batch(max_batch)
            // Interval short enough that ticks (strictly increasing
            // scripted time) genuinely flush stale sub-size batches.
            .flush_interval_ns(1);
        let svc = IngestService::spawn_planned(base.clone(), seed, cfg).unwrap();
        let snaps = svc.subscribe().unwrap();

        let mut clock = 0u64;
        for (i, &e) in events.iter().enumerate() {
            svc.submit(e).unwrap();
            if i % tick_every == tick_every - 1 {
                clock += 10;
                svc.tick(clock).unwrap();
            }
            if i % flush_every == flush_every - 1 {
                svc.flush().unwrap();
            }
        }
        let (report, engine) = svc.shutdown();
        prop_assert_eq!(report.events, events.len() as u64);

        // Final state: bit-identical to the oracle on the whole soup.
        let final_oracle = oracle_cores(&base, &events);
        prop_assert_eq!(engine.cores(), &final_oracle[..]);

        // Every published epoch: consistent with the prefix it covers.
        let mut last_epoch = 0u64;
        let mut last_ops = 0u64;
        let mut published = 0usize;
        while let Ok(snap) = snaps.try_recv() {
            prop_assert!(snap.epoch > last_epoch, "epochs strictly increase");
            prop_assert!(snap.ops >= last_ops, "coverage never regresses");
            last_epoch = snap.epoch;
            last_ops = snap.ops;
            published += 1;
            let prefix = oracle_cores(&base, &events[..snap.ops as usize]);
            // The COW-published chunked cores must be bit-identical to a
            // full rebuild on the covered prefix — chunk sharing across
            // epochs never leaks a stale or future value.
            prop_assert_eq!(
                snap.cores.to_vec(),
                prefix.clone(),
                "torn read at epoch {}",
                snap.epoch
            );
            // The derived fields ship consistently with the cores: the
            // incrementally maintained histogram equals the one a full
            // rescan would produce.
            prop_assert_eq!(
                snap.degeneracy,
                prefix.iter().copied().max().unwrap_or(0)
            );
            let mut expect_hist = vec![0usize; snap.degeneracy as usize + 1];
            for &c in &prefix {
                expect_hist[c as usize] += 1;
            }
            prop_assert_eq!(&snap.histogram, &expect_hist, "histogram drifted");
            prop_assert_eq!(snap.histogram.iter().sum::<usize>(), snap.num_vertices);
            let members = snap.kcore_members(snap.degeneracy);
            prop_assert!(!members.is_empty() || snap.degeneracy == 0);
        }
        prop_assert!(published > 0, "at least the final epoch is published");
        prop_assert_eq!(last_ops, events.len() as u64, "final epoch covers everything");
    }

    /// Backpressure safety: a producer that sheds on `QueueFull` and
    /// retries after a flush barrier neither loses nor duplicates events.
    #[test]
    fn try_submit_with_retry_is_lossless(
        base in arb_base(12, 20),
        raw in prop::collection::vec((any::<bool>(), 0u32..12, 0u32..12), 1..40),
        cap in 1usize..5,
        seed in any::<u64>(),
    ) {
        let events: Vec<GraphEvent> = raw
            .iter()
            .map(|&(ins, u, v)| if ins {
                GraphEvent::EdgeInserted(u, v)
            } else {
                GraphEvent::EdgeRemoved(u, v)
            })
            .collect();
        let svc = IngestService::spawn_planned(
            base.clone(),
            seed,
            IngestConfig::scripted().queue_capacity(cap).max_batch(3),
        )
        .unwrap();
        for &e in &events {
            loop {
                match svc.try_submit(e) {
                    Ok(()) => break,
                    Err(_) => {
                        // Barrier drains the queue, then retry the same
                        // event exactly once more per round.
                        svc.flush().unwrap();
                    }
                }
            }
        }
        let snap = svc.flush().unwrap();
        prop_assert_eq!(snap.ops, events.len() as u64);
        let (_, engine) = svc.shutdown();
        prop_assert_eq!(engine.cores(), &oracle_cores(&base, &events)[..]);
    }

    /// Corruption safety: flip any single byte of — or truncate at any
    /// point — either file of a journal + snapshot pair, and recovery
    /// must never produce a silently wrong state. Every outcome is
    /// either an explicit error or an engine bit-identical to the
    /// oracle on exactly the prefix the [`RecoveryReport`] claims
    /// durable.
    #[test]
    fn fault_corruption_recovers_reported_prefix_or_errors(
        raw in prop::collection::vec((any::<bool>(), 0u32..14, 0u32..14), 4..48),
        max_batch in 1usize..6,
        seed in any::<u64>(),
        target_journal in any::<bool>(),
        truncate in any::<bool>(),
        pos in any::<usize>(),
        mask in 1u8..=255,
    ) {
        use kcore_ingest::{recover, DurabilityConfig};
        use std::sync::atomic::{AtomicUsize, Ordering};
        static CASE: AtomicUsize = AtomicUsize::new(0);
        let dir = std::env::temp_dir()
            .join("kcore_ingest_proptest_corrupt")
            .join(format!("case_{}", CASE.fetch_add(1, Ordering::Relaxed)));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();

        let events: Vec<GraphEvent> = raw
            .iter()
            .map(|&(ins, u, v)| if ins {
                GraphEvent::EdgeInserted(u, v)
            } else {
                GraphEvent::EdgeRemoved(u, v)
            })
            .collect();
        let base = DynamicGraph::with_vertices(14);
        let d = DurabilityConfig::in_dir(&dir).snapshot_every(2);
        let svc = IngestService::spawn_planned(
            base.clone(),
            seed,
            IngestConfig::scripted().max_batch(max_batch).durable(d),
        )
        .unwrap();
        for &e in &events {
            svc.submit(e).unwrap();
        }
        svc.flush().unwrap();
        let (_, clean_engine) = svc.shutdown();

        // Corrupt exactly one file of the pair.
        let rd = DurabilityConfig::in_dir(&dir);
        let victim = if target_journal {
            rd.journal_path.clone()
        } else {
            rd.snapshot_path.clone()
        };
        let bytes = std::fs::read(&victim).unwrap();
        prop_assert!(!bytes.is_empty());
        if truncate {
            let keep = pos % (bytes.len() + 1);
            std::fs::write(&victim, &bytes[..keep]).unwrap();
        } else {
            let mut b = bytes;
            let at = pos % b.len();
            b[at] ^= mask;
            std::fs::write(&victim, &b).unwrap();
        }

        // An explicit refusal (`Err`) is always acceptable — the
        // property forbids only *silently* wrong states.
        if let Ok(rec) = recover(&rd, seed, kcore_maint::PlannerConfig::default(), 8) {
            let durable = rec.report.durable_ops as usize;
            prop_assert!(durable <= events.len());
            prop_assert_eq!(rec.next_seq, rec.report.durable_ops);
            prop_assert_eq!(
                rec.engine.cores(),
                &oracle_cores(&base, &events[..durable])[..],
                "rung {} recovered state diverges from the oracle on its own \
                 reported prefix",
                rec.report.rung
            );
            if durable == events.len() {
                prop_assert_eq!(rec.engine.cores(), clean_engine.cores());
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
