//! Immutable, epoch-versioned views of the maintained core state, and
//! the handle readers load them through.
//!
//! The writer publishes a fresh [`CoreSnapshot`] behind an `Arc` swap
//! after (a configurable number of) flushed micro-batches; readers
//! [`SnapshotHandle::load`] whichever epoch is current and then work on
//! an immutable object — no torn reads, no blocking the writer beyond
//! the pointer swap, and two loads in a row may observe different epochs
//! but never a half-applied batch (snapshots are only cut at micro-batch
//! boundaries).

use kcore_graph::VertexId;
use std::sync::{mpsc, Arc, RwLock};

/// One consistent view of the core state: everything a query thread
/// needs, owned (no borrow into the writer's engine).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoreSnapshot {
    /// Publication counter: strictly increasing, starting at 0 for the
    /// pre-stream snapshot cut at spawn.
    pub epoch: u64,
    /// Events covered: this snapshot reflects exactly the first `ops`
    /// submitted events (journal seqs `0..ops`), applied in order.
    pub ops: u64,
    /// Vertex-universe size.
    pub num_vertices: usize,
    /// Live edges.
    pub num_edges: usize,
    /// Core number per vertex.
    pub cores: Vec<u32>,
    /// `histogram[k]` = vertices with core exactly `k`
    /// (`histogram.len() == degeneracy + 1`).
    pub histogram: Vec<usize>,
    /// Largest `k` with a non-empty k-core.
    pub degeneracy: u32,
    /// Publication time (writer-clock nanoseconds: wall elapsed, or the
    /// scripted clock's value — the staleness metric of the bench).
    pub published_at_ns: u64,
}

impl CoreSnapshot {
    /// Core number of one vertex.
    pub fn core(&self, v: VertexId) -> u32 {
        self.cores[v as usize]
    }

    /// Members of the k-core at this epoch (`O(n)` scan over the owned
    /// core vector; exact-capacity allocation via the histogram).
    pub fn kcore_members(&self, k: u32) -> Vec<VertexId> {
        let cap: usize = self
            .histogram
            .iter()
            .enumerate()
            .skip(k as usize)
            .map(|(_, &c)| c)
            .sum();
        let mut out = Vec::with_capacity(cap);
        for (v, &c) in self.cores.iter().enumerate() {
            if c >= k {
                out.push(v as VertexId);
            }
        }
        out
    }
}

/// Shared slot the writer publishes through; clone freely across reader
/// threads. Readers pay one brief read-lock to clone the inner `Arc`,
/// then hold a consistent snapshot for as long as they like without
/// touching the lock again.
#[derive(Debug, Clone)]
pub struct SnapshotHandle {
    slot: Arc<RwLock<Arc<CoreSnapshot>>>,
}

impl SnapshotHandle {
    pub(crate) fn new(initial: CoreSnapshot) -> Self {
        SnapshotHandle {
            slot: Arc::new(RwLock::new(Arc::new(initial))),
        }
    }

    /// The current snapshot. Never blocks on the writer's batch work —
    /// only on the pointer swap itself.
    pub fn load(&self) -> Arc<CoreSnapshot> {
        self.slot.read().expect("snapshot slot poisoned").clone()
    }

    pub(crate) fn publish(&self, snap: Arc<CoreSnapshot>) {
        *self.slot.write().expect("snapshot slot poisoned") = snap;
    }
}

/// A push subscription: the writer sends every published snapshot into
/// each subscriber's unbounded channel (dead receivers are dropped).
/// This is the test hook behind the snapshot-consistency proptests — a
/// polling reader can miss epochs, a subscriber sees all of them.
pub type SnapshotReceiver = mpsc::Receiver<Arc<CoreSnapshot>>;

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(epoch: u64, cores: Vec<u32>) -> CoreSnapshot {
        let degeneracy = cores.iter().copied().max().unwrap_or(0);
        let mut histogram = vec![0usize; degeneracy as usize + 1];
        for &c in &cores {
            histogram[c as usize] += 1;
        }
        CoreSnapshot {
            epoch,
            ops: 0,
            num_vertices: cores.len(),
            num_edges: 0,
            cores,
            histogram,
            degeneracy,
            published_at_ns: 0,
        }
    }

    #[test]
    fn load_returns_latest_published() {
        let h = SnapshotHandle::new(snap(0, vec![0, 0]));
        let reader = h.clone();
        assert_eq!(reader.load().epoch, 0);
        let old = reader.load();
        h.publish(Arc::new(snap(1, vec![1, 1])));
        // The old Arc stays valid and immutable; new loads see epoch 1.
        assert_eq!(old.epoch, 0);
        assert_eq!(reader.load().epoch, 1);
        assert_eq!(reader.load().cores, vec![1, 1]);
    }

    #[test]
    fn kcore_members_filters_by_core() {
        let s = snap(3, vec![2, 1, 2, 0, 3]);
        assert_eq!(s.kcore_members(2), vec![0, 2, 4]);
        assert_eq!(s.kcore_members(3), vec![4]);
        assert_eq!(s.kcore_members(0).len(), 5);
        assert!(s.kcore_members(4).is_empty());
        assert_eq!(s.core(4), 3);
    }
}
