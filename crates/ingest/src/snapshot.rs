//! Immutable, epoch-versioned views of the maintained core state, and
//! the handle readers load them through.
//!
//! The writer publishes a fresh [`CoreSnapshot`] after (a configurable
//! number of) flushed micro-batches; readers [`SnapshotHandle::load`]
//! whichever epoch is current and then work on an immutable object — no
//! torn reads, no blocking the writer, and two loads in a row may
//! observe different epochs but never a half-applied batch (snapshots
//! are only cut at micro-batch boundaries).
//!
//! Two layers keep both sides cheap:
//!
//! * **Publication** is copy-on-write: `cores` is a [`ChunkedCores`],
//!   so consecutive epochs share every chunk no flush dirtied and the
//!   writer pays `O(changed)` per epoch, not `O(n)` (see
//!   [`crate::chunked`]).
//! * **Loading** goes through an epoch-validated double buffer
//!   (seqlock-style): the writer alternates between two slots and bumps
//!   an atomic version *after* the swap; a reader snapshots the
//!   version, clones from the active slot, and retries on the (rare)
//!   torn window where the version moved mid-clone. The slots are
//!   `Mutex`-held `Arc`s, but the writer only ever locks the *inactive*
//!   slot — a reader's lock on the active slot is uncontended in
//!   steady state, so loads never wait on the writer's batch work.

use crate::chunked::{ChunkedCores, CoreMetrics};
use kcore_graph::VertexId;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};

/// One consistent view of the core state: everything a query thread
/// needs, owned (no borrow into the writer's engine).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoreSnapshot {
    /// Publication counter: strictly increasing, starting at 0 for the
    /// pre-stream snapshot cut at spawn.
    pub epoch: u64,
    /// Events covered: this snapshot reflects exactly the first `ops`
    /// submitted events (journal seqs `0..ops`), applied in order.
    pub ops: u64,
    /// Vertex-universe size.
    pub num_vertices: usize,
    /// Live edges.
    pub num_edges: usize,
    /// Core number per vertex — chunk-shared with neighbouring epochs
    /// (copy-on-write), so holding many epochs costs the *diff*, not
    /// `n` per epoch.
    pub cores: ChunkedCores,
    /// `histogram[k]` = vertices with core exactly `k`
    /// (`histogram.len() == degeneracy + 1`); maintained incrementally
    /// from core deltas by the writer's mirror.
    pub histogram: Vec<usize>,
    /// Largest `k` with a non-empty k-core.
    pub degeneracy: u32,
    /// Publication time (writer-clock nanoseconds: wall elapsed, or the
    /// scripted clock's value — the staleness metric of the bench).
    pub published_at_ns: u64,
    /// Order-index maintenance metrics (`deg⁺`/`mcd`), published only
    /// when [`crate::IngestConfig::publish_metrics`] opted in — chunked
    /// and COW-shared like [`CoreSnapshot::cores`], so the sharded
    /// boundary-table repair reads them snapshot-visible without the
    /// writer copying either array per epoch.
    pub metrics: Option<Arc<CoreMetrics>>,
}

impl CoreSnapshot {
    /// Core number of one vertex.
    pub fn core(&self, v: VertexId) -> u32 {
        self.cores.get(v as usize)
    }

    /// Members of the k-core at this epoch. The incrementally
    /// maintained histogram gives the exact member count up front, so
    /// the result is allocated once at its final size — and an empty
    /// `k`-core returns without scanning the cores at all.
    pub fn kcore_members(&self, k: u32) -> Vec<VertexId> {
        let total: usize = self.histogram.iter().skip(k as usize).copied().sum();
        let mut out = Vec::with_capacity(total);
        if total == 0 {
            return out;
        }
        for (v, c) in self.cores.iter().enumerate() {
            if c >= k {
                out.push(v as VertexId);
            }
        }
        debug_assert_eq!(out.len(), total);
        out
    }
}

/// How many torn-read retries [`SnapshotHandle::load`] attempts before
/// settling for the slot it last cloned. A torn clone is still a fully
/// consistent (just previous-epoch) snapshot — slots are only ever
/// replaced wholesale — so the cap bounds latency without risking a
/// half-written view.
const LOAD_RETRY_CAP: usize = 64;

#[derive(Debug)]
struct Slots {
    /// Publication version; `version % 2` names the slot holding the
    /// *latest* snapshot. Bumped with `Release` after the slot write.
    version: AtomicU64,
    slots: [Mutex<Arc<CoreSnapshot>>; 2],
}

/// Shared slot pair the writer publishes through; clone freely across
/// reader threads. Readers validate an atomic epoch around an
/// uncontended slot clone (the writer only writes the slot readers are
/// *not* directed at), so loads never wait on the writer's batch work.
#[derive(Debug, Clone)]
pub struct SnapshotHandle {
    shared: Arc<Slots>,
}

impl SnapshotHandle {
    pub(crate) fn new(initial: CoreSnapshot) -> Self {
        let initial = Arc::new(initial);
        SnapshotHandle {
            shared: Arc::new(Slots {
                version: AtomicU64::new(0),
                slots: [Mutex::new(initial.clone()), Mutex::new(initial)],
            }),
        }
    }

    /// The current snapshot.
    ///
    /// Reads the version, clones out of the slot it names, and
    /// re-checks the version: unchanged means the clone is the latest
    /// publication. A concurrent publish directs the *next* load at the
    /// other slot, so the retry loop terminates immediately in practice
    /// ([`LOAD_RETRY_CAP`] bounds the adversarial case; the fallback
    /// return is a consistent, at-most-one-epoch-old snapshot, and
    /// epochs observed by any single reader are still monotone — a slot
    /// only ever holds snapshots at least as new as the version that
    /// last named it).
    pub fn load(&self) -> Arc<CoreSnapshot> {
        let mut tries = 0;
        loop {
            let v1 = self.shared.version.load(Ordering::Acquire);
            let snap = self.shared.slots[(v1 % 2) as usize]
                .lock()
                .expect("snapshot slot poisoned")
                .clone();
            let v2 = self.shared.version.load(Ordering::Acquire);
            if v1 == v2 || tries >= LOAD_RETRY_CAP {
                return snap;
            }
            tries += 1;
        }
    }

    /// Single-writer publication: writes the inactive slot, then flips
    /// the version to direct readers at it.
    pub(crate) fn publish(&self, snap: Arc<CoreSnapshot>) {
        let v = self.shared.version.load(Ordering::Relaxed);
        let next = v + 1;
        *self.shared.slots[(next % 2) as usize]
            .lock()
            .expect("snapshot slot poisoned") = snap;
        self.shared.version.store(next, Ordering::Release);
    }
}

/// A push subscription: the writer sends every published snapshot into
/// each subscriber's unbounded channel (dead receivers are dropped).
/// This is the test hook behind the snapshot-consistency proptests — a
/// polling reader can miss epochs, a subscriber sees all of them.
pub type SnapshotReceiver = mpsc::Receiver<Arc<CoreSnapshot>>;

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(epoch: u64, cores: Vec<u32>) -> CoreSnapshot {
        let degeneracy = cores.iter().copied().max().unwrap_or(0);
        let mut histogram = vec![0usize; degeneracy as usize + 1];
        for &c in &cores {
            histogram[c as usize] += 1;
        }
        CoreSnapshot {
            epoch,
            ops: 0,
            num_vertices: cores.len(),
            num_edges: 0,
            cores: ChunkedCores::from_slice(&cores),
            histogram,
            degeneracy,
            published_at_ns: 0,
            metrics: None,
        }
    }

    #[test]
    fn load_returns_latest_published() {
        let h = SnapshotHandle::new(snap(0, vec![0, 0]));
        let reader = h.clone();
        assert_eq!(reader.load().epoch, 0);
        let old = reader.load();
        h.publish(Arc::new(snap(1, vec![1, 1])));
        // The old Arc stays valid and immutable; new loads see epoch 1.
        assert_eq!(old.epoch, 0);
        assert_eq!(reader.load().epoch, 1);
        assert_eq!(reader.load().cores.to_vec(), vec![1, 1]);
        // Several publications in a row keep alternating slots.
        for e in 2..9u64 {
            h.publish(Arc::new(snap(e, vec![e as u32; 2])));
            assert_eq!(reader.load().epoch, e);
        }
    }

    #[test]
    fn kcore_members_filters_by_core() {
        let s = snap(3, vec![2, 1, 2, 0, 3]);
        assert_eq!(s.kcore_members(2), vec![0, 2, 4]);
        assert_eq!(s.kcore_members(3), vec![4]);
        assert_eq!(s.kcore_members(0).len(), 5);
        assert!(s.kcore_members(4).is_empty());
        assert_eq!(s.core(4), 3);
        // Exact-capacity allocation straight from the histogram.
        let members = s.kcore_members(2);
        assert_eq!(members.capacity(), members.len());
    }

    #[test]
    fn concurrent_loads_see_monotone_epochs() {
        let h = SnapshotHandle::new(snap(0, vec![0; 64]));
        let writer = h.clone();
        const EPOCHS: u64 = 2000;
        std::thread::scope(|s| {
            let mut readers = Vec::new();
            for _ in 0..2 {
                let handle = h.clone();
                readers.push(s.spawn(move || {
                    let mut last = 0u64;
                    let mut distinct = 0usize;
                    while last < EPOCHS {
                        let snap = handle.load();
                        assert!(
                            snap.epoch >= last,
                            "reader saw epoch {} after {}",
                            snap.epoch,
                            last
                        );
                        // Payload must always match its epoch label —
                        // the torn-read guard this test exists for.
                        assert_eq!(snap.cores.get(0), snap.epoch as u32);
                        if snap.epoch != last {
                            distinct += 1;
                        }
                        last = snap.epoch;
                    }
                    distinct
                }));
            }
            for e in 1..=EPOCHS {
                writer.publish(Arc::new(snap(e, vec![e as u32; 64])));
            }
            for r in readers {
                assert!(r.join().unwrap() >= 1);
            }
        });
    }
}
