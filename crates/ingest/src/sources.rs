//! Adapters from the `kcore-gen` stream shapes to [`GraphEvent`]s — the
//! seam between workload generation (sliding windows, churn batches,
//! timestamped micro-batches) and the ingest channel.

use kcore_gen::{ChurnBatch, WindowOp};
use kcore_graph::DynamicGraph;
use kcore_maint::journal::GraphEvent;

/// Replays `events` onto a clone of `base` with the engines' batch skip
/// semantics (self-loop, out-of-range endpoint, duplicate insert,
/// missing removal → skipped). This is the *model* of what any
/// [`crate::IngestEngine`] ends up holding after ingesting the stream —
/// the single definition the equivalence tests and the bench oracle
/// share, so the skip rules cannot drift between them.
pub fn apply_events(base: &DynamicGraph, events: &[GraphEvent]) -> DynamicGraph {
    let mut g = base.clone();
    let n = g.num_vertices();
    for &e in events {
        match e {
            GraphEvent::EdgeInserted(u, v) => {
                if u != v && (u as usize) < n && (v as usize) < n && !g.has_edge(u, v) {
                    g.insert_edge_unchecked(u, v);
                }
            }
            GraphEvent::EdgeRemoved(u, v) => {
                if (u as usize) < n && (v as usize) < n {
                    let _ = g.remove_edge(u, v);
                }
            }
        }
    }
    g
}

/// One window transition as an ingest event: admissions insert, expiries
/// remove.
pub fn window_event(op: WindowOp) -> GraphEvent {
    match op {
        WindowOp::Admit(u, v) => GraphEvent::EdgeInserted(u, v),
        WindowOp::Expire(u, v) => GraphEvent::EdgeRemoved(u, v),
    }
}

/// A churn micro-batch as an event run: all inserts, then all removes —
/// the order [`kcore_gen::churn_stream`] guarantees replays cleanly.
pub fn churn_events(batch: &ChurnBatch) -> impl Iterator<Item = GraphEvent> + '_ {
    batch
        .inserts
        .iter()
        .map(|&(u, v)| GraphEvent::EdgeInserted(u, v))
        .chain(
            batch
                .removes
                .iter()
                .map(|&(u, v)| GraphEvent::EdgeRemoved(u, v)),
        )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adapters_preserve_order_and_kind() {
        assert_eq!(
            window_event(WindowOp::Admit(1, 2)),
            GraphEvent::EdgeInserted(1, 2)
        );
        assert_eq!(
            window_event(WindowOp::Expire(3, 4)),
            GraphEvent::EdgeRemoved(3, 4)
        );
        let batch = ChurnBatch {
            inserts: vec![(0, 1), (2, 3)],
            removes: vec![(0, 1)],
        };
        let events: Vec<GraphEvent> = churn_events(&batch).collect();
        assert_eq!(
            events,
            vec![
                GraphEvent::EdgeInserted(0, 1),
                GraphEvent::EdgeInserted(2, 3),
                GraphEvent::EdgeRemoved(0, 1),
            ]
        );
    }
}
