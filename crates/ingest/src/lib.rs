//! # kcore-ingest
//!
//! The streaming ingest subsystem: the component that actually *runs*
//! the order-based maintenance of the source paper against a live stream
//! of edge updates, end to end.
//!
//! * **Single writer, bounded queue, real backpressure** — an
//!   [`IngestService`] owns a maintenance engine (by default the
//!   planner-driven [`kcore_maint::PlannedCore`]) on a dedicated writer
//!   thread fed by a bounded MPSC channel of [`GraphEvent`]s.
//!   [`IngestService::try_submit`] surfaces [`IngestError::QueueFull`]
//!   when the writer falls behind; [`IngestService::submit`] blocks.
//! * **Micro-batching** — events flush on batch-size or clock tick;
//!   [`ClockMode::Scripted`] serialises time into the message stream so
//!   every test is wall-clock-free and deterministic.
//! * **Snapshot-isolated reads, published copy-on-write** — each flush
//!   publishes an immutable, epoch-versioned [`CoreSnapshot`] (cores,
//!   histogram, degeneracy, k-core membership) through an
//!   epoch-validated double buffer: any number of reader threads load
//!   consistent state without blocking the writer. Publication is
//!   `O(changed)`, not `O(n)` — cores live in a chunked persistent
//!   array ([`chunked::ChunkedCores`]) and consecutive epochs share
//!   every chunk the flush did not dirty.
//! * **Durability** — the writer ships the [`kcore_maint::journal`]
//!   tail into an append-only, per-record-checksummed journal file
//!   (KJRN v2) and periodically persists the full index into a rotated
//!   set of snapshot generations; [`recover`] restores snapshot +
//!   journal tail (replayed in planner-priced batches) after a crash,
//!   escalating down a ladder of fallbacks (truncate torn tail → older
//!   snapshot generation → genesis replay) and reporting which rung
//!   fired in a [`RecoveryReport`].
//! * **Fault tolerance** — storage I/O is routed through a
//!   [`faults::JournalIo`] seam so tests inject short writes, failed
//!   fsyncs, bit flips, and crashes at scripted operation counts; the
//!   writer itself is supervised ([`ServiceHealth`]): engine panics are
//!   caught, readers keep the last published epoch, and the service
//!   rebuilds itself through [`recover`] under a bounded
//!   [`RecoveryPolicy`] backoff.
//! * **Observability** — each writer carries a lock-light
//!   [`kcore_obs::MetricsRegistry`] (atomic counters, gauges, and
//!   log-bucketed latency histograms with a per-flush stage breakdown)
//!   plus a bounded [`kcore_obs::SpanRecorder`] whose spans use the
//!   writer's own clock — bit-exact traces under
//!   [`ClockMode::Scripted`]. Read live via [`IngestService::metrics`]
//!   / [`IngestService::spans`], render with
//!   [`MetricsSnapshot::render_text`] (Prometheus) or
//!   [`MetricsSnapshot::to_json`]; opt out per service with
//!   [`ObsConfig::disabled`]. The [`ShardRouter`] layers its own
//!   registry on top: merged-cut phase spans and a cross-shard lag
//!   gauge.
//!
//! ```
//! use kcore_ingest::{GraphEvent, IngestConfig, IngestService};
//! use kcore_graph::DynamicGraph;
//!
//! let svc = IngestService::spawn_planned(
//!     DynamicGraph::with_vertices(4),
//!     42,
//!     IngestConfig::scripted().max_batch(2),
//! )
//! .unwrap();
//! svc.submit(GraphEvent::EdgeInserted(0, 1)).unwrap();
//! svc.submit(GraphEvent::EdgeInserted(1, 2)).unwrap(); // size-flush
//! let snap = svc.flush().unwrap();
//! assert_eq!(snap.ops, 2);
//! assert_eq!(snap.core(1), 1);
//! let (report, engine) = svc.shutdown();
//! assert_eq!(report.events, 2);
//! assert_eq!(engine.cores(), &[1, 1, 1, 0]);
//! ```

pub mod chunked;
pub mod durability;
pub mod faults;
pub mod router;
pub mod service;
pub mod snapshot;
pub mod sources;

pub use chunked::{ChunkedCores, CoreMetrics, CoreMirror, MetricMirror, CHUNK};
pub use durability::{
    persist_index_snapshot, read_journal, recover, snapshot_generation_path, DurabilityConfig,
    JournalContents, JournalSink, RecoverError, Recovered, RecoveryReport, RecoveryRung,
};
pub use faults::{
    FaultKind, FaultPlan, FlakyEngine, FlakyProbe, JournalIo, OpClass, StorageHandle,
};
pub use kcore_maint::journal::GraphEvent;
pub use kcore_obs::{
    Counter, Gauge, Histogram, HistogramSnapshot, MetricValue, MetricsRegistry, MetricsSnapshot,
    Span, SpanRecorder,
};
pub use router::{MergedHandle, MergedSnapshot, RouterStats, ShardRouter};
pub use service::{
    ClockMode, IngestConfig, IngestEngine, IngestError, IngestPause, IngestReport, IngestService,
    ObsConfig, RecoveryPolicy, RetryBudget, ServiceHealth,
};
pub use snapshot::{CoreSnapshot, SnapshotHandle, SnapshotReceiver};

#[cfg(test)]
mod tests;
