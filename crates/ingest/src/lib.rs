//! # kcore-ingest
//!
//! The streaming ingest subsystem: the component that actually *runs*
//! the order-based maintenance of the source paper against a live stream
//! of edge updates, end to end.
//!
//! * **Single writer, bounded queue, real backpressure** — an
//!   [`IngestService`] owns a maintenance engine (by default the
//!   planner-driven [`kcore_maint::PlannedCore`]) on a dedicated writer
//!   thread fed by a bounded MPSC channel of [`GraphEvent`]s.
//!   [`IngestService::try_submit`] surfaces [`IngestError::QueueFull`]
//!   when the writer falls behind; [`IngestService::submit`] blocks.
//! * **Micro-batching** — events flush on batch-size or clock tick;
//!   [`ClockMode::Scripted`] serialises time into the message stream so
//!   every test is wall-clock-free and deterministic.
//! * **Snapshot-isolated reads, published copy-on-write** — each flush
//!   publishes an immutable, epoch-versioned [`CoreSnapshot`] (cores,
//!   histogram, degeneracy, k-core membership) through an
//!   epoch-validated double buffer: any number of reader threads load
//!   consistent state without blocking the writer. Publication is
//!   `O(changed)`, not `O(n)` — cores live in a chunked persistent
//!   array ([`chunked::ChunkedCores`]) and consecutive epochs share
//!   every chunk the flush did not dirty.
//! * **Durability** — the writer ships the [`kcore_maint::journal`]
//!   tail into an append-only journal file and periodically persists the
//!   full index; [`recover`] restores snapshot + journal tail (replayed
//!   in planner-priced batches) after a crash.
//!
//! ```
//! use kcore_ingest::{GraphEvent, IngestConfig, IngestService};
//! use kcore_graph::DynamicGraph;
//!
//! let svc = IngestService::spawn_planned(
//!     DynamicGraph::with_vertices(4),
//!     42,
//!     IngestConfig::scripted().max_batch(2),
//! )
//! .unwrap();
//! svc.submit(GraphEvent::EdgeInserted(0, 1)).unwrap();
//! svc.submit(GraphEvent::EdgeInserted(1, 2)).unwrap(); // size-flush
//! let snap = svc.flush().unwrap();
//! assert_eq!(snap.ops, 2);
//! assert_eq!(snap.core(1), 1);
//! let (report, engine) = svc.shutdown();
//! assert_eq!(report.events, 2);
//! assert_eq!(engine.cores(), &[1, 1, 1, 0]);
//! ```

pub mod chunked;
pub mod durability;
pub mod service;
pub mod snapshot;
pub mod sources;

pub use chunked::{ChunkedCores, CoreMirror, CHUNK};
pub use durability::{
    read_journal, recover, DurabilityConfig, JournalSink, RecoverError, Recovered,
};
pub use kcore_maint::journal::GraphEvent;
pub use service::{
    ClockMode, IngestConfig, IngestEngine, IngestError, IngestPause, IngestReport, IngestService,
};
pub use snapshot::{CoreSnapshot, SnapshotHandle, SnapshotReceiver};

#[cfg(test)]
mod tests;
