//! Sharded multi-engine ingest: the [`ShardRouter`] fans [`GraphEvent`]s
//! out to N per-shard [`IngestService`] writers and merges their epochs
//! into one consistent global cut, a [`MergedSnapshot`].
//!
//! ## Layout
//!
//! Vertex ownership comes from a [`ShardMap`]. Every shard's
//! [`DynamicGraph`] spans the full vertex universe but holds only the
//! edges with at least one owned endpoint — a cross-shard edge is
//! mirrored into *both* owners' graphs, so each side sees the remote
//! endpoint's degree contribution and per-shard skip semantics stay
//! bit-identical to the single-engine model
//! ([`crate::sources::apply_events`]).
//! The live cross-shard edge set, with per-vertex mirror degrees, sits
//! in a [`BoundaryTable`].
//!
//! ## Routing and backpressure
//!
//! Each shard writer keeps its own bounded queue. A local event goes to
//! its one owner; a cross-shard event goes to both owners, lower shard
//! id first. [`ShardRouter::try_submit`] surfaces `QueueFull` from the
//! *first* leg before anything is enqueued, so an event is never half
//! routed; the mirror leg then blocks (safe: every writer drains
//! independently). Per-shard queues mean one slow shard back-pressures
//! only the traffic that touches it.
//!
//! ## The merged cut
//!
//! [`ShardRouter::merged_cut`] flushes every shard (a barrier: each
//! per-shard snapshot then covers everything routed to it, so the set
//! of per-shard snapshots is one consistent prefix of the global
//! stream), replays the window's events onto the router's union graph
//! under the shared skip semantics, and repairs the global core array
//! with the cross-shard boundary pass
//! ([`kcore_maint::boundary::BoundaryRepair`]) — promotion/dismissal
//! work whose seed component spans shards exchanges frontier vertices
//! between per-shard queues until fixpoint. The repaired cores live in
//! a [`CoreMirror`], so publication is `O(changed)` chunk COW;
//! the [`MergedSnapshot`] holds the per-shard [`CoreSnapshot`]s by
//! `Arc` — nothing copies a shard's chunked core array.
//!
//! Merged epochs are the router's own counter: unlike per-shard epochs
//! (which restart at zero when a crashed shard is respawned), the
//! merged epoch is monotone across shard recovery, and the per-shard
//! epochs reported in the snapshot are rebased
//! ([`MergedSnapshot::shard_epochs`]) to stay monotone too.

use crate::chunked::{ChunkedCores, CoreMirror};
use crate::durability::{recover, RecoverError, RecoveryReport};
use crate::service::{IngestConfig, IngestError, IngestReport, IngestService};
use crate::snapshot::CoreSnapshot;
use kcore_decomp::core_decomposition;
use kcore_graph::{BoundaryTable, DynamicGraph, ShardMap, VertexId};
use kcore_maint::boundary::{BoundaryPassStats, BoundaryRepair};
use kcore_maint::journal::GraphEvent;
use kcore_maint::PlannedCore;
use kcore_obs::{Counter, Gauge, Histogram, MetricsRegistry, SpanRecorder};
use std::io;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// One consistent cross-shard view: global cores (exact for the union
/// graph over the covered prefix) plus the per-shard snapshots it was
/// merged from, held by reference.
#[derive(Debug, Clone)]
pub struct MergedSnapshot {
    /// Router cut counter — strictly increasing, monotone across
    /// per-shard crash recovery (unlike raw per-shard epochs).
    pub epoch: u64,
    /// Events covered: exactly the first `ops` events submitted to the
    /// router, applied in order.
    pub ops: u64,
    /// Vertex-universe size.
    pub num_vertices: usize,
    /// Live edges in the union graph (each cross-shard edge counted
    /// once).
    pub num_edges: usize,
    /// Global core number per vertex — chunk-shared with neighbouring
    /// cuts (COW), never a copy of any per-shard array.
    pub cores: ChunkedCores,
    /// `histogram[k]` = vertices with global core exactly `k`.
    pub histogram: Vec<usize>,
    /// Largest `k` with a non-empty global k-core.
    pub degeneracy: u32,
    /// Rebased per-shard epochs at this cut: monotone per shard even
    /// across a recovery swap.
    pub shard_epochs: Vec<u64>,
    /// The per-shard snapshots this cut merged (`Arc`-shared with each
    /// shard's own readers; their chunked cores are not copied).
    pub shards: Vec<Arc<CoreSnapshot>>,
    /// Live cross-shard edges at this cut.
    pub boundary_edges: usize,
    /// Boundary-repair counters for this cut's window.
    pub repair: BoundaryPassStats,
}

impl MergedSnapshot {
    /// Global core number of `v`.
    pub fn core(&self, v: VertexId) -> u32 {
        self.cores.get(v as usize)
    }

    /// Vertices in the global `k`-core.
    pub fn kcore_members(&self, k: u32) -> Vec<VertexId> {
        self.cores
            .iter()
            .enumerate()
            .filter(|&(_, c)| c >= k)
            .map(|(v, _)| v as VertexId)
            .collect()
    }

    /// `v`'s core number within shard `s`'s own subgraph — a lower
    /// bound on [`MergedSnapshot::core`].
    pub fn shard_core(&self, s: usize, v: VertexId) -> u32 {
        self.shards[s].core(v)
    }
}

/// Cheap cloneable reader handle to the latest merged cut.
#[derive(Clone)]
pub struct MergedHandle {
    latest: Arc<Mutex<Arc<MergedSnapshot>>>,
}

impl MergedHandle {
    /// The latest published cut (lock-held only for the `Arc` clone).
    pub fn load(&self) -> Arc<MergedSnapshot> {
        self.latest.lock().unwrap().clone()
    }
}

/// Cumulative router counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct RouterStats {
    /// Merged cuts published (excluding the spawn-time cut 0).
    pub cuts: u64,
    /// Events routed (each event once, however many legs it took).
    pub events: u64,
    /// Events whose endpoints were owned by different shards (routed to
    /// both).
    pub cross_shard_events: u64,
    /// Boundary-pass counters accumulated over every cut
    /// (`boundary_exchanges` sums; `rounds` keeps the per-cut max).
    pub repair: BoundaryPassStats,
}

/// Router-level metric handles: cut counters, merged-cut phase latency
/// histograms, and the cross-shard lag gauge. Always on — the router is
/// a control-plane object, never on a per-event hot path (`merged_cut`
/// is the only instrumented operation).
struct RouterObs {
    registry: MetricsRegistry,
    spans: SpanRecorder,
    origin: Instant,
    cuts: Counter,
    events: Counter,
    cross_events: Counter,
    boundary_rounds: Counter,
    boundary_exchanges: Counter,
    /// Max pairwise spread of rebased per-shard epochs at the last cut —
    /// how far the most- and least-advanced shards have drifted apart.
    lag: Gauge,
    boundary_edges: Gauge,
    phase_barrier: Histogram,
    phase_union_replay: Histogram,
    phase_boundary_repair: Histogram,
    phase_publish: Histogram,
}

impl RouterObs {
    fn new() -> Self {
        let reg = MetricsRegistry::new();
        RouterObs {
            cuts: reg.counter("router_cuts_total"),
            events: reg.counter("router_events_total"),
            cross_events: reg.counter("router_cross_shard_events_total"),
            boundary_rounds: reg.counter("router_boundary_rounds_total"),
            boundary_exchanges: reg.counter("router_boundary_exchanges_total"),
            lag: reg.gauge("router_cross_shard_lag"),
            boundary_edges: reg.gauge("router_boundary_edges"),
            phase_barrier: reg.histogram("router_cut_barrier_ns"),
            phase_union_replay: reg.histogram("router_cut_union_replay_ns"),
            phase_boundary_repair: reg.histogram("router_cut_boundary_repair_ns"),
            phase_publish: reg.histogram("router_cut_publish_ns"),
            spans: SpanRecorder::with_capacity(256),
            origin: Instant::now(),
            registry: reg,
        }
    }

    fn now(&self) -> u64 {
        self.origin.elapsed().as_nanos() as u64
    }
}

struct ShardSlot {
    /// `None` only between `abort_shard` and `recover_shard`.
    svc: Option<IngestService<PlannedCore>>,
    cfg: IngestConfig,
    /// Every event routed to this shard since spawn, in order — the
    /// shard's journal-equivalent, used to re-submit the undurable tail
    /// after a crash recovery.
    routed: Vec<GraphEvent>,
    /// Added to the live service's epochs so the reported per-shard
    /// epoch stays monotone across recovery swaps.
    epoch_base: u64,
    /// Last rebased epoch reported at a cut.
    last_epoch: u64,
}

/// Fans events to per-shard [`IngestService`]s and merges their epochs
/// into consistent global cuts. See the module docs for the protocol.
pub struct ShardRouter {
    map: Arc<dyn ShardMap>,
    slots: Vec<ShardSlot>,
    /// The union graph at the last cut (all shards' edges, each once).
    union: DynamicGraph,
    /// Events submitted since the last cut, in order.
    window: Vec<GraphEvent>,
    boundary: BoundaryTable,
    repair: BoundaryRepair,
    /// Exact global cores at the last cut.
    cores: Vec<u32>,
    mirror: CoreMirror,
    epoch: u64,
    ops: u64,
    seed: u64,
    handle: MergedHandle,
    stats: RouterStats,
    obs: RouterObs,
}

impl ShardRouter {
    /// Spawns one in-memory writer per shard of `map` over `base`.
    /// Durability must go through [`ShardRouter::spawn_with`] (each
    /// shard needs its own journal directory).
    pub fn spawn(
        base: DynamicGraph,
        map: Arc<dyn ShardMap>,
        seed: u64,
        cfg: IngestConfig,
    ) -> io::Result<Self> {
        if cfg.durability.is_some() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "shards cannot share one durability directory; use spawn_with \
                 to give each shard its own",
            ));
        }
        Self::spawn_with(base, map, seed, |_| cfg.clone())
    }

    /// Spawns one writer per shard, with `mk_cfg(shard)` supplying each
    /// shard's config (point each shard's durability, if any, at its
    /// own directory).
    pub fn spawn_with(
        base: DynamicGraph,
        map: Arc<dyn ShardMap>,
        seed: u64,
        mut mk_cfg: impl FnMut(usize) -> IngestConfig,
    ) -> io::Result<Self> {
        let shards = map.shards();
        assert!(shards >= 1, "need at least one shard");
        let n = base.num_vertices();
        let mut boundary = BoundaryTable::new(shards, n);
        let mut shard_graphs: Vec<DynamicGraph> = (0..shards)
            .map(|_| DynamicGraph::with_vertices(n))
            .collect();
        for (u, v) in base.edges() {
            let (ou, ov) = (map.owner(u), map.owner(v));
            shard_graphs[ou].insert_edge_unchecked(u, v);
            if ou != ov {
                shard_graphs[ov].insert_edge_unchecked(u, v);
                boundary.note(u, v, ou, ov);
            }
        }
        let mut slots = Vec::with_capacity(shards);
        for (s, g) in shard_graphs.into_iter().enumerate() {
            let cfg = mk_cfg(s);
            let svc = IngestService::spawn_planned(g, seed.wrapping_add(s as u64), cfg.clone())?;
            slots.push(ShardSlot {
                svc: Some(svc),
                cfg,
                routed: Vec::new(),
                epoch_base: 0,
                last_epoch: 0,
            });
        }
        let cores = core_decomposition(&base);
        let mirror = CoreMirror::from_slice(&cores);
        let shard_snaps: Vec<Arc<CoreSnapshot>> = slots
            .iter()
            .map(|s| s.svc.as_ref().unwrap().snapshots().load())
            .collect();
        let cut0 = Arc::new(MergedSnapshot {
            epoch: 0,
            ops: 0,
            num_vertices: n,
            num_edges: base.num_edges(),
            cores: mirror.snapshot_cores(),
            histogram: mirror.histogram(),
            degeneracy: mirror.degeneracy(),
            shard_epochs: vec![0; shards],
            shards: shard_snaps,
            boundary_edges: boundary.len(),
            repair: BoundaryPassStats::default(),
        });
        Ok(ShardRouter {
            map,
            slots,
            union: base,
            window: Vec::new(),
            boundary,
            repair: BoundaryRepair::new(),
            cores,
            mirror,
            epoch: 0,
            ops: 0,
            seed,
            handle: MergedHandle {
                latest: Arc::new(Mutex::new(cut0)),
            },
            stats: RouterStats::default(),
            obs: RouterObs::new(),
        })
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.slots.len()
    }

    /// The shard map.
    pub fn map(&self) -> &dyn ShardMap {
        &*self.map
    }

    /// Cumulative counters.
    pub fn stats(&self) -> RouterStats {
        self.stats
    }

    /// Reader handle to the latest merged cut (cloneable, cross-thread).
    pub fn subscribe(&self) -> MergedHandle {
        self.handle.clone()
    }

    /// The router's own metrics registry: cut counters, merged-cut phase
    /// latency histograms, and the cross-shard lag gauge. Cloneable and
    /// readable from any thread.
    pub fn metrics(&self) -> MetricsRegistry {
        self.obs.registry.clone()
    }

    /// The router's merged-cut span ring (phases: `barrier`,
    /// `union_replay`, `boundary_repair`, `publish`; trace id = merged
    /// epoch).
    pub fn spans(&self) -> SpanRecorder {
        self.obs.spans.clone()
    }

    /// Shard `s`'s own writer registry (flush-stage histograms, planner
    /// and recovery counters) — `None` if the shard is down or spawned
    /// with observability disabled.
    pub fn shard_metrics(&self, s: usize) -> Option<MetricsRegistry> {
        self.slots[s].svc.as_ref().and_then(|svc| svc.metrics())
    }

    fn endpoints(e: GraphEvent) -> (VertexId, VertexId) {
        match e {
            GraphEvent::EdgeInserted(u, v) | GraphEvent::EdgeRemoved(u, v) => (u, v),
        }
    }

    fn svc(&self, s: usize) -> Result<&IngestService<PlannedCore>, IngestError> {
        self.slots[s].svc.as_ref().ok_or(IngestError::Closed)
    }

    fn note_routed(&mut self, e: GraphEvent, lo: usize, hi: usize) {
        self.slots[lo].routed.push(e);
        if hi != lo {
            self.slots[hi].routed.push(e);
            self.stats.cross_shard_events += 1;
            self.obs.cross_events.inc();
        }
        self.stats.events += 1;
        self.obs.events.inc();
        self.window.push(e);
    }

    /// Delivers one leg to shard `s`. A down shard (crashed and not yet
    /// recovered) accepts silently: the event is already parked in its
    /// routed log, and [`ShardRouter::recover_shard`] replays it. A
    /// writer found dead mid-send is marked down the same way.
    fn leg(&mut self, s: usize, e: GraphEvent, blocking: bool) -> Result<(), IngestError> {
        let Some(svc) = self.slots[s].svc.as_ref() else {
            return Ok(()); // parked for recovery replay
        };
        let res = if blocking {
            svc.submit(e)
        } else {
            svc.try_submit(e)
        };
        match res {
            Ok(()) => Ok(()),
            Err(IngestError::Closed) => {
                // The writer died out from under us; park this and all
                // further traffic until the shard is recovered.
                self.slots[s].svc = None;
                Ok(())
            }
            Err(e) => Err(e),
        }
    }

    /// Non-blocking on the first leg: `QueueFull` from the (lower-id)
    /// owner rejects the event before anything is enqueued, so no event
    /// is ever half routed. The mirror leg of a cross-shard event then
    /// blocks — safe, because every shard's writer drains independently.
    pub fn try_submit(&mut self, e: GraphEvent) -> Result<(), IngestError> {
        let (u, v) = Self::endpoints(e);
        let (a, b) = (self.map.owner(u), self.map.owner(v));
        let (lo, hi) = (a.min(b), a.max(b));
        self.leg(lo, e, false)?;
        if hi != lo {
            self.leg(hi, e, true)?;
        }
        self.note_routed(e, lo, hi);
        Ok(())
    }

    /// Blocking submit to every owning shard, lower shard id first.
    pub fn submit(&mut self, e: GraphEvent) -> Result<(), IngestError> {
        let (u, v) = Self::endpoints(e);
        let (a, b) = (self.map.owner(u), self.map.owner(v));
        let (lo, hi) = (a.min(b), a.max(b));
        self.leg(lo, e, true)?;
        if hi != lo {
            self.leg(hi, e, true)?;
        }
        self.note_routed(e, lo, hi);
        Ok(())
    }

    /// Advances every live shard's scripted clock.
    pub fn tick(&self, now_ns: u64) -> Result<(), IngestError> {
        for slot in &self.slots {
            if let Some(svc) = slot.svc.as_ref() {
                svc.tick(now_ns)?;
            }
        }
        Ok(())
    }

    /// Cuts and publishes one consistent cross-shard snapshot covering
    /// every event submitted so far. A barrier: flushes all shards,
    /// then runs the boundary repair over the cut's event window.
    pub fn merged_cut(&mut self) -> Result<Arc<MergedSnapshot>, IngestError> {
        let trace = self.epoch + 1;
        let window_len = self.window.len() as u64;
        let t_barrier = self.obs.now();
        // Barrier: after these flushes every per-shard snapshot covers
        // exactly the events routed to it — one consistent prefix.
        let mut shard_snaps = Vec::with_capacity(self.slots.len());
        for s in 0..self.slots.len() {
            let snap = self.svc(s)?.flush()?;
            debug_assert_eq!(
                snap.ops,
                self.slots[s].routed.len() as u64,
                "shard {s} snapshot does not cover its routed prefix"
            );
            shard_snaps.push(snap);
        }
        let shard_snaps_len = shard_snaps.len() as u64;
        let t_replay = self.obs.now();

        // Replay the window onto the union graph under the shared skip
        // semantics (`sources::apply_events` is the model), collecting
        // the *net* edge delta for the repair seed and keeping the
        // boundary table in step with applied cross-shard operations.
        let n = self.union.num_vertices();
        let mut net: kcore_graph::FxHashMap<u64, bool> = kcore_graph::FxHashMap::default();
        for &e in &self.window {
            match e {
                GraphEvent::EdgeInserted(u, v) => {
                    if u != v && (u as usize) < n && (v as usize) < n && !self.union.has_edge(u, v)
                    {
                        self.union.insert_edge_unchecked(u, v);
                        let key = kcore_graph::edge_key(u, v);
                        if net.remove(&key).is_none() {
                            net.insert(key, true);
                        }
                        let (ou, ov) = (self.map.owner(u), self.map.owner(v));
                        if ou != ov {
                            self.boundary.note(u, v, ou, ov);
                        }
                    }
                }
                GraphEvent::EdgeRemoved(u, v) => {
                    if (u as usize) < n && (v as usize) < n && self.union.remove_edge(u, v).is_ok()
                    {
                        let key = kcore_graph::edge_key(u, v);
                        if net.remove(&key).is_none() {
                            net.insert(key, false);
                        }
                        self.boundary.forget(u, v);
                    }
                }
            }
        }
        let mut inserts: Vec<(VertexId, VertexId)> = Vec::new();
        let mut removes: Vec<(VertexId, VertexId)> = Vec::new();
        let mut keys: Vec<(u64, bool)> = net.into_iter().collect();
        keys.sort_unstable();
        for (key, inserted) in keys {
            let (u, v) = kcore_graph::key_edge(key);
            if inserted {
                inserts.push((u, v));
            } else {
                removes.push((u, v));
            }
        }

        let t_repair = self.obs.now();
        // Cross-shard boundary repair: exact global cores for the
        // post-window union graph, O(affected region), with frontier
        // exchange between shards counted in the stats.
        let mut changes = Vec::new();
        let pass = self.repair.repair(
            &self.union,
            &*self.map,
            &mut self.cores,
            &inserts,
            &removes,
            &mut changes,
        );
        let t_publish = self.obs.now();
        for &(v, _, new) in &changes {
            self.mirror.apply(v, new);
        }
        debug_assert_eq!(self.mirror.snapshot_cores().to_vec(), self.cores);

        self.epoch += 1;
        self.ops += self.window.len() as u64;
        self.window.clear();
        self.stats.cuts += 1;
        self.stats.repair.absorb(pass);

        let mut shard_epochs = Vec::with_capacity(self.slots.len());
        for (slot, snap) in self.slots.iter_mut().zip(&shard_snaps) {
            slot.last_epoch = slot.epoch_base + snap.epoch;
            shard_epochs.push(slot.last_epoch);
        }
        let merged = Arc::new(MergedSnapshot {
            epoch: self.epoch,
            ops: self.ops,
            num_vertices: n,
            num_edges: self.union.num_edges(),
            cores: self.mirror.snapshot_cores(),
            histogram: self.mirror.histogram(),
            degeneracy: self.mirror.degeneracy(),
            shard_epochs,
            shards: shard_snaps,
            boundary_edges: self.boundary.len(),
            repair: pass,
        });
        *self.handle.latest.lock().unwrap() = merged.clone();

        let t_end = self.obs.now();
        self.obs.cuts.inc();
        self.obs.boundary_rounds.add(pass.rounds);
        self.obs.boundary_exchanges.add(pass.boundary_exchanges);
        self.obs.boundary_edges.set(self.boundary.len() as f64);
        let max_epoch = merged.shard_epochs.iter().copied().max().unwrap_or(0);
        let min_epoch = merged.shard_epochs.iter().copied().min().unwrap_or(0);
        self.obs.lag.set((max_epoch - min_epoch) as f64);
        let phases = [
            (
                "barrier",
                t_barrier,
                t_replay - t_barrier,
                shard_snaps_len,
                &self.obs.phase_barrier,
            ),
            (
                "union_replay",
                t_replay,
                t_repair - t_replay,
                window_len,
                &self.obs.phase_union_replay,
            ),
            (
                "boundary_repair",
                t_repair,
                t_publish - t_repair,
                pass.boundary_exchanges,
                &self.obs.phase_boundary_repair,
            ),
            (
                "publish",
                t_publish,
                t_end - t_publish,
                changes.len() as u64,
                &self.obs.phase_publish,
            ),
        ];
        for (stage, start, dur, items, hist) in phases {
            hist.record(dur);
            self.obs.spans.record(trace, stage, start, dur, items);
        }
        Ok(merged)
    }

    /// Crash-sims shard `s`: kills its writer thread mid-flight without
    /// flushing (the per-shard journal keeps whatever was shipped). The
    /// shard stays down — submissions touching it fail `Closed` — until
    /// [`ShardRouter::recover_shard`].
    pub fn abort_shard(&mut self, s: usize) {
        if let Some(svc) = self.slots[s].svc.take() {
            svc.abort();
        }
    }

    /// Recovers shard `s` through the durability ladder (journal +
    /// snapshot generations), re-submits the undurable tail of the
    /// events the router routed to it, and swaps the rebuilt writer in.
    /// The shard's reported epochs stay monotone across the swap
    /// (rebased), and the next [`ShardRouter::merged_cut`] is again
    /// consistent over the full submitted prefix.
    pub fn recover_shard(&mut self, s: usize) -> io::Result<RecoveryReport> {
        if let Some(svc) = self.slots[s].svc.take() {
            // Recovering a live shard: take it down first, abruptly (the
            // point of the exercise is the crash path).
            svc.abort();
        }
        let slot = &mut self.slots[s];
        let d = slot.cfg.durability.clone().ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("shard {s} has no durability configured; nothing to recover from"),
            )
        })?;
        let rec = recover(
            &d,
            self.seed.wrapping_add(s as u64),
            slot.cfg.planner.clone(),
            slot.cfg.max_batch.max(1),
        )
        .map_err(|e| match e {
            RecoverError::Io(e) => e,
            other => io::Error::new(io::ErrorKind::InvalidData, other.to_string()),
        })?;
        let report = rec.report.clone();
        let durable = rec.report.durable_ops as usize;
        debug_assert!(durable <= slot.routed.len());
        let svc = IngestService::spawn_recovered(rec, slot.cfg.clone())?;
        for &e in &slot.routed[durable.min(slot.routed.len())..] {
            svc.submit(e)
                .map_err(|e| io::Error::new(io::ErrorKind::BrokenPipe, e.to_string()))?;
        }
        // Rebase so `epoch_base + fresh epochs` continues past the last
        // epoch this shard ever reported.
        slot.epoch_base = slot.last_epoch;
        slot.svc = Some(svc);
        Ok(report)
    }

    /// Invariant check (tests): boundary table consistent with the map
    /// and the union graph, the mirror bit-identical to the repaired
    /// cores, and — when no window is pending — every shard-local core
    /// a lower bound on the merged one.
    pub fn validate(&self) -> Result<(), String> {
        self.boundary.validate(&*self.map, Some(&self.union))?;
        if self.mirror.snapshot_cores().to_vec() != self.cores {
            return Err("publication mirror diverged from repaired cores".into());
        }
        if self.window.is_empty() {
            let merged = self.handle.load();
            for (s, slot) in self.slots.iter().enumerate() {
                let Some(svc) = slot.svc.as_ref() else {
                    continue;
                };
                let snap = svc.snapshots().load();
                if snap.ops != slot.routed.len() as u64 {
                    continue; // shard has unflushed work; skip the bound
                }
                for v in 0..self.cores.len() as VertexId {
                    if snap.core(v) > merged.core(v) {
                        return Err(format!(
                            "shard {s} core({v}) = {} exceeds merged {}",
                            snap.core(v),
                            merged.core(v)
                        ));
                    }
                }
            }
        }
        Ok(())
    }

    /// Shuts every shard down gracefully; returns the merged report
    /// ([`IngestReport::merge`]) plus each shard's own report and
    /// engine.
    pub fn shutdown(mut self) -> (IngestReport, Vec<(IngestReport, PlannedCore)>) {
        let mut per_shard = Vec::with_capacity(self.slots.len());
        for slot in &mut self.slots {
            if let Some(svc) = slot.svc.take() {
                per_shard.push(svc.shutdown());
            }
        }
        let reports: Vec<IngestReport> = per_shard.iter().map(|(r, _)| r.clone()).collect();
        (IngestReport::merge(&reports), per_shard)
    }
}
