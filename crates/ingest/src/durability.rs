//! Durability for the ingest service: an append-only event journal, a
//! rotated set of index snapshots, and the [`recover`] escalation ladder
//! that composes them.
//!
//! The contract mirrors classic WAL + checkpoint systems, scoped to the
//! micro-batch: after every flushed batch the writer ships the
//! [`Journaled`] tail (via the incremental `drain_since` cursor) into the
//! journal file, and every `snapshot_every_batches` flushes it persists
//! the full index ([`OrderCore::save`] under a small header carrying the
//! covered-prefix length). A crash therefore loses at most the events
//! that never reached a flush. All file traffic goes through the
//! [`crate::faults::JournalIo`] seam, so every failure mode — torn
//! write, failed fsync, bit flip, crash at a failpoint — is a scripted,
//! reproducible test case.
//!
//! ## File formats (little-endian)
//!
//! Journal **v3** (written): header
//! `"KJRN" u32 | version=3 u32 | n u32 | base u64 | header_crc u32`
//! (24 bytes; `base` is the seq of the first record, non-zero after a
//! snapshot-only recovery reset; `header_crc` covers the first 20
//! bytes). The body is a sequence of **delta-encoded frames**, one per
//! shipped batch:
//! `"FRAM" u32 | count u32 | first_seq u64 | payload_len u32 | crc u32`
//! then `payload_len` payload bytes holding `count` records of
//! `kind u8 (0 insert / 1 remove) | zigzag-LEB128(u − prev_u) |
//! zigzag-LEB128(v − u)` — seqs are implicit (`first_seq + i`, the
//! journal is gap-free by construction) and vertex ids are stored as
//! signed deltas, so a typical record is 3–6 bytes instead of v2's 21.
//! The frame CRC covers everything after the marker (count, first_seq,
//! payload_len, payload). The reader validates frame-by-frame: any
//! corruption (bad marker, bad CRC, broken seq continuity, torn frame)
//! ends the readable prefix at the last fully-valid frame instead of
//! silently replaying garbage.
//!
//! Journal **v2** (still read): same 24-byte header with `version=2`;
//! frames are `"FRAM" u32 | count u32` followed by `count` absolute
//! 21-byte records (`seq u64 | kind u8 | u u32 | v u32 | crc u32`, the
//! trailing CRC covering the record's first 17 bytes).
//!
//! Journal **v1** (still read): 12-byte header without `base`/CRC and
//! bare 17-byte records with no frames — only a torn *tail* is
//! detectable. [`JournalSink::open`] transparently upgrades a v1 or v2
//! file to v3 (atomic rewrite) before appending.
//!
//! Snapshot **v2** (written): `"KSNP" u32 | version=2 u32 | ops u64 |
//! crc u32` then the checksummed [`OrderCore::save`] payload; the CRC
//! covers `ops` + payload, closing the v1 hole where a flipped `ops`
//! field silently shifted the replay point. v1 (16-byte header, no CRC)
//! still loads. Snapshots are written temp-file + fsync + rename +
//! parent-directory fsync — durable across power loss, not just process
//! crash — and rotated: `ingest.ksnp` is the newest generation,
//! `ingest.ksnp.1` the previous, up to
//! [`DurabilityConfig::snapshot_generations`].

use crate::faults::StorageHandle;
use kcore_graph::DynamicGraph;
use kcore_maint::journal::{replay_batched, GraphEvent, JournalEntry};
use kcore_maint::{PersistError, PlannedCore, Planner, PlannerConfig, TreapOrderCore, UpdateStats};
use std::io;
use std::path::{Path, PathBuf};

const JOURNAL_MAGIC: u32 = 0x4B4A_524E; // "KJRN"
const SNAPSHOT_MAGIC: u32 = 0x4B53_4E50; // "KSNP"
const FRAME_MAGIC: u32 = u32::from_le_bytes(*b"FRAM");
const VERSION_1: u32 = 1;
const VERSION_2: u32 = 2;
const VERSION_3: u32 = 3;
/// v1 record: `seq u64 | kind u8 | u u32 | v u32`.
const RECORD_BYTES: usize = 8 + 1 + 4 + 4;
/// v2 record: v1 record + trailing CRC32.
const RECORD_V2_BYTES: usize = RECORD_BYTES + 4;
const HEADER_V1_BYTES: usize = 12;
const HEADER_V2_BYTES: usize = 24;
const FRAME_HEADER_BYTES: usize = 8;
/// v3 frame header: marker, count, first_seq, payload_len, crc.
const FRAME_V3_HEADER_BYTES: usize = 4 + 4 + 8 + 4 + 4;
const SNAP_HEADER_V1_BYTES: usize = 16;
const SNAP_HEADER_V2_BYTES: usize = 20;

// ---------------------------------------------------------------- CRC32

/// IEEE CRC-32 (reflected, poly 0xEDB88320) — the journal/snapshot
/// record checksum. Hand-rolled table so the crate stays dependency-free.
const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc32_table();

/// Incremental CRC-32 over multiple slices.
pub(crate) struct Crc32(u32);

impl Crc32 {
    pub(crate) fn new() -> Self {
        Crc32(0xFFFF_FFFF)
    }

    pub(crate) fn update(&mut self, bytes: &[u8]) -> &mut Self {
        let mut c = self.0;
        for &b in bytes {
            c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
        }
        self.0 = c;
        self
    }

    pub(crate) fn finish(&self) -> u32 {
        self.0 ^ 0xFFFF_FFFF
    }
}

/// One-shot CRC-32 of a byte slice.
pub(crate) fn crc32(bytes: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(bytes);
    c.finish()
}

// -------------------------------------------------------- configuration

/// Where and how often the service persists.
#[derive(Debug, Clone)]
pub struct DurabilityConfig {
    /// Append-only event journal.
    pub journal_path: PathBuf,
    /// Newest index snapshot (temp-file + rename + dir fsync); older
    /// generations live beside it with `.1`, `.2`, … suffixes.
    pub snapshot_path: PathBuf,
    /// Persist the index every this many flushed batches (`0` = only on
    /// graceful shutdown).
    pub snapshot_every_batches: usize,
    /// `fsync` the journal after every shipped batch. Off by default:
    /// the bench measures the cheap mode, and the recovery contract
    /// (lose at most the unflushed tail) already holds per OS buffer.
    pub fsync: bool,
    /// Snapshot generations retained, including the newest (`>= 1`).
    /// More generations give the recovery ladder more rungs before it
    /// falls back to a genesis replay.
    pub snapshot_generations: usize,
    /// The storage seam all file traffic routes through — real
    /// `std::fs` by default, a scripted [`crate::faults::FaultPlan`] in
    /// fault-injection tests.
    pub storage: StorageHandle,
}

impl DurabilityConfig {
    /// Journal + snapshot under `dir` with shutdown-only snapshots, two
    /// retained generations, and real storage.
    pub fn in_dir<P: AsRef<Path>>(dir: P) -> Self {
        let dir = dir.as_ref();
        DurabilityConfig {
            journal_path: dir.join("ingest.kjrn"),
            snapshot_path: dir.join("ingest.ksnp"),
            snapshot_every_batches: 0,
            fsync: false,
            snapshot_generations: 2,
            storage: StorageHandle::real(),
        }
    }

    /// Sets the periodic-snapshot cadence.
    pub fn snapshot_every(mut self, batches: usize) -> Self {
        self.snapshot_every_batches = batches;
        self
    }

    /// Sets how many snapshot generations are retained.
    pub fn generations(mut self, generations: usize) -> Self {
        self.snapshot_generations = generations.max(1);
        self
    }

    /// Routes all storage through a scripted fault plan.
    pub fn with_faults(mut self, plan: crate::faults::FaultPlan) -> Self {
        self.storage = StorageHandle::faulty(plan);
        self
    }

    /// Routes all storage through the given handle.
    pub fn with_storage(mut self, storage: StorageHandle) -> Self {
        self.storage = storage;
        self
    }
}

/// Path of snapshot generation `g` (0 = the configured path itself).
pub fn snapshot_generation_path(path: &Path, generation: usize) -> PathBuf {
    if generation == 0 {
        path.to_path_buf()
    } else {
        let mut os = path.as_os_str().to_os_string();
        os.push(format!(".{generation}"));
        PathBuf::from(os)
    }
}

/// Why recovery failed.
#[derive(Debug)]
pub enum RecoverError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The journal file is missing, not a journal, or header-corrupt —
    /// and no snapshot could stand in for it.
    BadJournal(&'static str),
    /// The snapshot file exists but failed validation.
    BadSnapshot(PersistError),
    /// Snapshot and journal disagree (different vertex universe, or the
    /// journal starts past genesis with no usable snapshot).
    Mismatch(&'static str),
}

impl std::fmt::Display for RecoverError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecoverError::Io(e) => write!(f, "io error: {e}"),
            RecoverError::BadJournal(what) => write!(f, "bad journal: {what}"),
            RecoverError::BadSnapshot(e) => write!(f, "bad snapshot: {e}"),
            RecoverError::Mismatch(what) => write!(f, "snapshot/journal mismatch: {what}"),
        }
    }
}

impl std::error::Error for RecoverError {}

impl From<io::Error> for RecoverError {
    fn from(e: io::Error) -> Self {
        RecoverError::Io(e)
    }
}

// ------------------------------------------------------ journal: write

/// Encodes one v1-layout record (no CRC) into `out` — only the
/// compatibility fixtures write this layout now.
#[cfg(test)]
fn encode_record(out: &mut Vec<u8>, seq: u64, event: GraphEvent) {
    let (kind, u, v) = match event {
        GraphEvent::EdgeInserted(u, v) => (0u8, u, v),
        GraphEvent::EdgeRemoved(u, v) => (1u8, u, v),
    };
    out.extend_from_slice(&seq.to_le_bytes());
    out.push(kind);
    out.extend_from_slice(&u.to_le_bytes());
    out.extend_from_slice(&v.to_le_bytes());
}

/// Zigzag-maps a signed delta into the unsigned LEB128 domain.
fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

fn put_leb128(out: &mut Vec<u8>, mut x: u64) {
    loop {
        let b = (x & 0x7F) as u8;
        x >>= 7;
        if x == 0 {
            out.push(b);
            break;
        }
        out.push(b | 0x80);
    }
}

fn get_leb128(bytes: &[u8], at: &mut usize) -> Option<u64> {
    let mut x = 0u64;
    let mut shift = 0u32;
    loop {
        let &b = bytes.get(*at)?;
        *at += 1;
        if shift == 63 && b > 1 {
            return None; // > 64 bits: not a value we ever wrote
        }
        x |= u64::from(b & 0x7F) << shift;
        if b & 0x80 == 0 {
            return Some(x);
        }
        shift += 7;
        if shift > 63 {
            return None;
        }
    }
}

/// Encodes one shipped batch as a v3 delta frame: marker, count,
/// first_seq, payload length, frame CRC, then the zigzag-LEB128 delta
/// payload. Entries must carry contiguous seqs (the journal is gap-free
/// by construction — seqs are stored once, as `first_seq`). Public so
/// the bench can measure the encoding cost and byte size.
pub fn encode_frame(entries: &[JournalEntry]) -> Vec<u8> {
    debug_assert!(entries.windows(2).all(|w| w[1].seq == w[0].seq + 1));
    let mut payload = Vec::with_capacity(entries.len() * 6);
    let mut prev_u = 0u32;
    for e in entries {
        let (kind, u, v) = match e.event {
            GraphEvent::EdgeInserted(u, v) => (0u8, u, v),
            GraphEvent::EdgeRemoved(u, v) => (1u8, u, v),
        };
        payload.push(kind);
        put_leb128(&mut payload, zigzag(i64::from(u) - i64::from(prev_u)));
        put_leb128(&mut payload, zigzag(i64::from(v) - i64::from(u)));
        prev_u = u;
    }
    let first_seq = entries.first().map_or(0, |e| e.seq);
    let mut out = Vec::with_capacity(FRAME_V3_HEADER_BYTES + payload.len());
    out.extend_from_slice(&FRAME_MAGIC.to_le_bytes());
    out.extend_from_slice(&(entries.len() as u32).to_le_bytes());
    out.extend_from_slice(&first_seq.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    let mut crc = Crc32::new();
    crc.update(&out[4..20]).update(&payload);
    out.extend_from_slice(&crc.finish().to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

fn encode_journal_header(n: usize, base: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_V2_BYTES);
    out.extend_from_slice(&JOURNAL_MAGIC.to_le_bytes());
    out.extend_from_slice(&VERSION_3.to_le_bytes());
    out.extend_from_slice(&(n as u32).to_le_bytes());
    out.extend_from_slice(&base.to_le_bytes());
    let crc = crc32(&out[..20]);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

/// Atomically (re)writes a journal file: temp file + fsync + rename +
/// parent-directory fsync. Used for the v1 → v2 upgrade and for the
/// snapshot-only journal reset.
fn write_journal_atomic(storage: &StorageHandle, path: &Path, bytes: &[u8]) -> io::Result<()> {
    let tmp = path.with_extension("kjrn.tmp");
    storage.with(|io| {
        io.write_file(&tmp, bytes)?;
        io.sync_file(&tmp)?;
        io.rename(&tmp, path)?;
        io.sync_dir(path.parent().unwrap_or_else(|| Path::new(".")))
    })
}

/// The append-only journal file, opened once by the writer thread. All
/// traffic routes through the config's [`StorageHandle`].
#[derive(Debug)]
pub struct JournalSink {
    path: PathBuf,
    storage: StorageHandle,
    fsync: bool,
    /// Seq the next appended record must carry (`base` + intact records
    /// at open).
    existing: u64,
    /// Records appended through this sink instance.
    appended: u64,
    /// Byte length of the validated prefix — where a failed append is
    /// truncated back to so the file never holds a partial frame
    /// followed by a good one.
    intact_len: u64,
}

impl JournalSink {
    /// Creates the journal (writing a v2 header) or re-opens an existing
    /// one for append after validating its header against `n`. A v1 file
    /// is upgraded to v2 in place (atomic rewrite); a damaged suffix is
    /// truncated so resumed appends continue the intact prefix.
    pub fn open(
        path: &Path,
        n: usize,
        fsync: bool,
        storage: &StorageHandle,
    ) -> io::Result<JournalSink> {
        let bytes = match storage.with(|io| io.read(path)) {
            Ok(b) => b,
            Err(e) if e.kind() == io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(e),
        };
        if bytes.is_empty() {
            let header = encode_journal_header(n, 0);
            storage.with(|io| io.append(path, &header))?;
            if fsync {
                storage.with(|io| io.sync_data(path))?;
            }
            return Ok(JournalSink {
                path: path.to_path_buf(),
                storage: storage.clone(),
                fsync,
                existing: 0,
                appended: 0,
                intact_len: HEADER_V2_BYTES as u64,
            });
        }
        let contents = parse_journal(&bytes).map_err(|e| match e {
            RecoverError::Io(io) => io,
            other => io::Error::new(io::ErrorKind::InvalidData, other.to_string()),
        })?;
        if contents.n != n {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("journal declares {} vertices, engine has {n}", contents.n),
            ));
        }
        let mut intact_len = contents.intact_bytes;
        if contents.version != VERSION_3 {
            // Upgrade: re-encode the intact prefix as one v3 delta frame
            // under a v3 header, atomically, so this file's future
            // appends share one format (and v1 gains checksums).
            let entries: Vec<JournalEntry> = contents
                .events
                .iter()
                .map(|&(seq, event)| JournalEntry {
                    seq,
                    event,
                    transitions: Vec::new(),
                })
                .collect();
            let mut rewritten = encode_journal_header(n, contents.base);
            if !entries.is_empty() {
                rewritten.extend_from_slice(&encode_frame(&entries));
            }
            intact_len = rewritten.len() as u64;
            write_journal_atomic(storage, path, &rewritten)?;
        } else if contents.damage.is_some() {
            // Drop the damaged bytes so resumed appends continue the
            // intact prefix instead of landing behind garbage.
            storage.with(|io| io.truncate(path, contents.intact_bytes))?;
        }
        Ok(JournalSink {
            path: path.to_path_buf(),
            storage: storage.clone(),
            fsync,
            existing: contents.base + contents.events.len() as u64,
            appended: 0,
            intact_len,
        })
    }

    /// Seq the next appended record must carry for the file to stay
    /// gap-free (`base` + intact records at open + appends since).
    pub fn existing(&self) -> u64 {
        self.existing
    }

    /// Appends one shipped tail as a checksummed frame. On a failed
    /// write the file is truncated back to the last intact frame
    /// boundary, so a later retry of the same entries cannot land behind
    /// partial bytes; the original error is returned either way.
    pub fn append(&mut self, entries: &[JournalEntry]) -> io::Result<()> {
        if entries.is_empty() {
            return Ok(());
        }
        let frame = encode_frame(entries);
        if let Err(e) = self.storage.with(|io| io.append(&self.path, &frame)) {
            let _ = self
                .storage
                .with(|io| io.truncate(&self.path, self.intact_len));
            return Err(e);
        }
        self.intact_len += frame.len() as u64;
        self.appended += entries.len() as u64;
        if self.fsync {
            self.storage.with(|io| io.sync_data(&self.path))?;
        }
        Ok(())
    }

    /// Re-attempts the journal fsync (after a failed one — the data is
    /// already appended, only durability is outstanding).
    pub fn sync(&mut self) -> io::Result<()> {
        self.storage.with(|io| io.sync_data(&self.path))
    }

    /// Records appended through this sink instance.
    pub fn appended(&self) -> u64 {
        self.appended
    }
}

// ------------------------------------------------------- journal: read

/// What [`read_journal`] yields.
#[derive(Debug, Clone)]
pub struct JournalContents {
    /// Vertex universe the journal was created over.
    pub n: usize,
    /// Format version the file carries (1 or 2).
    pub version: u32,
    /// Seq of the first record (v1 files are always 0-based).
    pub base: u64,
    /// Intact events, gap-free from `base`.
    pub events: Vec<(u64, GraphEvent)>,
    /// Byte length of the validated prefix (header + whole valid
    /// frames) — the truncation point that repairs a damaged file.
    pub intact_bytes: u64,
    /// Why the readable prefix ended early, if it did. `None` = the
    /// whole file validated.
    pub damage: Option<&'static str>,
}

impl JournalContents {
    /// Seq one past the last intact event.
    pub fn durable_seq(&self) -> u64 {
        self.base + self.events.len() as u64
    }
}

/// Reads and validates a journal file (either version) via real
/// storage. Corruption past the header ends the readable prefix
/// (`damage`) instead of failing — the intact prefix is still a valid
/// recovery source. A corrupt *header* is an error: nothing in the file
/// can be trusted.
pub fn read_journal(path: &Path) -> Result<JournalContents, RecoverError> {
    read_journal_with(&StorageHandle::real(), path)
}

fn read_journal_with(
    storage: &StorageHandle,
    path: &Path,
) -> Result<JournalContents, RecoverError> {
    let bytes = storage
        .with(|io| io.read(path))
        .map_err(|_| RecoverError::BadJournal("journal file missing or unreadable"))?;
    parse_journal(&bytes)
}

fn parse_journal(bytes: &[u8]) -> Result<JournalContents, RecoverError> {
    if bytes.len() < HEADER_V1_BYTES {
        return Err(RecoverError::BadJournal("shorter than the header"));
    }
    let word = |at: usize| u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap());
    if word(0) != JOURNAL_MAGIC {
        return Err(RecoverError::BadJournal("not a kcore journal"));
    }
    match word(4) {
        VERSION_1 => parse_journal_v1(bytes),
        VERSION_2 => parse_journal_v2(bytes),
        VERSION_3 => parse_journal_v3(bytes),
        _ => Err(RecoverError::BadJournal("unknown journal version")),
    }
}

fn parse_journal_v1(bytes: &[u8]) -> Result<JournalContents, RecoverError> {
    let word = |at: usize| u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap());
    let n = word(8) as usize;
    let mut events = Vec::with_capacity((bytes.len() - HEADER_V1_BYTES) / RECORD_BYTES);
    let mut at = HEADER_V1_BYTES;
    let mut damage = None;
    let mut expected_seq = 0u64;
    while at + RECORD_BYTES <= bytes.len() {
        let seq = u64::from_le_bytes(bytes[at..at + 8].try_into().unwrap());
        let kind = bytes[at + 8];
        let u = word(at + 9);
        let v = word(at + 13);
        // Seqs are gap-free from 0 by construction; anything else is a
        // torn or corrupted tail, so the readable prefix ends here.
        if seq != expected_seq || kind > 1 {
            damage = Some("torn tail");
            break;
        }
        expected_seq += 1;
        events.push((
            seq,
            if kind == 0 {
                GraphEvent::EdgeInserted(u, v)
            } else {
                GraphEvent::EdgeRemoved(u, v)
            },
        ));
        at += RECORD_BYTES;
    }
    if damage.is_none() && at != bytes.len() {
        damage = Some("trailing partial record");
    }
    Ok(JournalContents {
        n,
        version: VERSION_1,
        base: 0,
        intact_bytes: (HEADER_V1_BYTES + events.len() * RECORD_BYTES) as u64,
        events,
        damage,
    })
}

fn parse_journal_v2(bytes: &[u8]) -> Result<JournalContents, RecoverError> {
    if bytes.len() < HEADER_V2_BYTES {
        return Err(RecoverError::BadJournal("shorter than the v2 header"));
    }
    let word = |at: usize| u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap());
    if word(20) != crc32(&bytes[..20]) {
        return Err(RecoverError::BadJournal("journal header checksum mismatch"));
    }
    let n = word(8) as usize;
    let base = u64::from_le_bytes(bytes[12..20].try_into().unwrap());
    let mut events = Vec::new();
    let mut at = HEADER_V2_BYTES;
    let mut intact = at;
    let mut damage = None;
    let mut expected_seq = base;
    'frames: while at < bytes.len() {
        if at + FRAME_HEADER_BYTES > bytes.len() {
            damage = Some("torn frame header");
            break;
        }
        if word(at) != FRAME_MAGIC {
            damage = Some("bad frame marker");
            break;
        }
        let count = word(at + 4) as usize;
        let Some(body) = count
            .checked_mul(RECORD_V2_BYTES)
            .and_then(|b| b.checked_add(at + FRAME_HEADER_BYTES))
        else {
            damage = Some("frame count overflow");
            break;
        };
        if body > bytes.len() {
            damage = Some("torn frame body");
            break;
        }
        // Validate the whole frame before committing any of it: a frame
        // is one shipped batch, and a half-valid frame means the append
        // was torn.
        let mut frame_events = Vec::with_capacity(count);
        let mut r = at + FRAME_HEADER_BYTES;
        for _ in 0..count {
            if word(r + RECORD_BYTES) != crc32(&bytes[r..r + RECORD_BYTES]) {
                damage = Some("record checksum mismatch");
                break 'frames;
            }
            let seq = u64::from_le_bytes(bytes[r..r + 8].try_into().unwrap());
            let kind = bytes[r + 8];
            if seq != expected_seq + frame_events.len() as u64 || kind > 1 {
                damage = Some("sequence break");
                break 'frames;
            }
            let u = word(r + 9);
            let v = word(r + 13);
            frame_events.push((
                seq,
                if kind == 0 {
                    GraphEvent::EdgeInserted(u, v)
                } else {
                    GraphEvent::EdgeRemoved(u, v)
                },
            ));
            r += RECORD_V2_BYTES;
        }
        expected_seq += frame_events.len() as u64;
        events.extend(frame_events);
        at = body;
        intact = at;
    }
    Ok(JournalContents {
        n,
        version: VERSION_2,
        base,
        events,
        intact_bytes: intact as u64,
        damage,
    })
}

fn parse_journal_v3(bytes: &[u8]) -> Result<JournalContents, RecoverError> {
    if bytes.len() < HEADER_V2_BYTES {
        return Err(RecoverError::BadJournal("shorter than the v3 header"));
    }
    let word = |at: usize| u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap());
    if word(20) != crc32(&bytes[..20]) {
        return Err(RecoverError::BadJournal("journal header checksum mismatch"));
    }
    let n = word(8) as usize;
    let base = u64::from_le_bytes(bytes[12..20].try_into().unwrap());
    let mut events = Vec::new();
    let mut at = HEADER_V2_BYTES;
    let mut intact = at;
    let mut damage = None;
    let mut expected_seq = base;
    'frames: while at < bytes.len() {
        if at + FRAME_V3_HEADER_BYTES > bytes.len() {
            damage = Some("torn frame header");
            break;
        }
        if word(at) != FRAME_MAGIC {
            damage = Some("bad frame marker");
            break;
        }
        let count = word(at + 4) as usize;
        let first_seq = u64::from_le_bytes(bytes[at + 8..at + 16].try_into().unwrap());
        let payload_len = word(at + 16) as usize;
        let Some(end) = payload_len.checked_add(at + FRAME_V3_HEADER_BYTES) else {
            damage = Some("frame length overflow");
            break;
        };
        if end > bytes.len() {
            damage = Some("torn frame body");
            break;
        }
        let payload = &bytes[at + FRAME_V3_HEADER_BYTES..end];
        let mut crc = Crc32::new();
        crc.update(&bytes[at + 4..at + 20]).update(payload);
        if word(at + 20) != crc.finish() {
            damage = Some("frame checksum mismatch");
            break;
        }
        if first_seq != expected_seq {
            damage = Some("sequence break");
            break;
        }
        // The CRC already vouches for the bytes; the decode checks below
        // guard against a frame that was *written* malformed.
        let mut frame_events = Vec::with_capacity(count);
        let mut r = 0usize;
        let mut prev_u = 0u32;
        for i in 0..count {
            let Some(&kind) = payload.get(r) else {
                damage = Some("frame payload underrun");
                break 'frames;
            };
            r += 1;
            if kind > 1 {
                damage = Some("unknown record kind");
                break 'frames;
            }
            let (Some(du), Some(dv)) = (get_leb128(payload, &mut r), get_leb128(payload, &mut r))
            else {
                damage = Some("frame payload underrun");
                break 'frames;
            };
            let Some(u) = u32::try_from(i64::from(prev_u) + unzigzag(du)).ok() else {
                damage = Some("vertex delta out of range");
                break 'frames;
            };
            let Some(v) = u32::try_from(i64::from(u) + unzigzag(dv)).ok() else {
                damage = Some("vertex delta out of range");
                break 'frames;
            };
            prev_u = u;
            frame_events.push((
                first_seq + i as u64,
                if kind == 0 {
                    GraphEvent::EdgeInserted(u, v)
                } else {
                    GraphEvent::EdgeRemoved(u, v)
                },
            ));
        }
        if r != payload.len() {
            damage = Some("frame payload overrun");
            break;
        }
        expected_seq += frame_events.len() as u64;
        events.extend(frame_events);
        at = end;
        intact = at;
    }
    Ok(JournalContents {
        n,
        version: VERSION_3,
        base,
        events,
        intact_bytes: intact as u64,
        damage,
    })
}

// ----------------------------------------------------------- snapshots

fn encode_snapshot(ops: u64, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(SNAP_HEADER_V2_BYTES + payload.len());
    out.extend_from_slice(&SNAPSHOT_MAGIC.to_le_bytes());
    out.extend_from_slice(&VERSION_2.to_le_bytes());
    out.extend_from_slice(&ops.to_le_bytes());
    let mut crc = Crc32::new();
    crc.update(&ops.to_le_bytes()).update(payload);
    out.extend_from_slice(&crc.finish().to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Persists the index snapshot into `d`'s rotation: temp file + fsync +
/// generation shift (`ksnp` → `ksnp.1` → …, oldest dropped) + rename +
/// parent-directory fsync. The directory fsync is what makes the rename
/// itself durable across power loss.
pub fn persist_index_snapshot(d: &DurabilityConfig, ops: u64, payload: &[u8]) -> io::Result<()> {
    let path = &d.snapshot_path;
    let bytes = encode_snapshot(ops, payload);
    let tmp = path.with_extension("ksnp.tmp");
    d.storage.with(|io| {
        io.write_file(&tmp, &bytes)?;
        io.sync_file(&tmp)
    })?;
    for g in (1..d.snapshot_generations.max(1)).rev() {
        let from = snapshot_generation_path(path, g - 1);
        if from.exists() {
            let to = snapshot_generation_path(path, g);
            d.storage.with(|io| io.rename(&from, &to))?;
        }
    }
    d.storage.with(|io| {
        io.rename(&tmp, path)?;
        io.sync_dir(path.parent().unwrap_or_else(|| Path::new(".")))
    })
}

/// Persists a single snapshot file (no rotation) through real storage —
/// the standalone form of [`persist_index_snapshot`], same temp-file +
/// fsync + rename + directory-fsync protocol.
pub fn save_index_snapshot(path: &Path, ops: u64, index: &TreapOrderCore) -> io::Result<()> {
    let mut payload = Vec::new();
    index.save(&mut payload)?;
    let d = DurabilityConfig {
        journal_path: PathBuf::new(),
        snapshot_path: path.to_path_buf(),
        snapshot_every_batches: 0,
        fsync: false,
        snapshot_generations: 1,
        storage: StorageHandle::real(),
    };
    persist_index_snapshot(&d, ops, &payload)
}

/// Loads an index snapshot (either version): `(ops covered, restored
/// index)`. A v2 snapshot's CRC is verified over `ops` + payload before
/// the payload's own structural validation runs.
pub fn load_index_snapshot(path: &Path, seed: u64) -> Result<(u64, TreapOrderCore), RecoverError> {
    load_snapshot_with(&StorageHandle::real(), path, seed)
}

fn load_snapshot_with(
    storage: &StorageHandle,
    path: &Path,
    seed: u64,
) -> Result<(u64, TreapOrderCore), RecoverError> {
    let bytes = storage.with(|io| io.read(path))?;
    if bytes.len() < SNAP_HEADER_V1_BYTES {
        return Err(RecoverError::BadSnapshot(PersistError::BadHeader));
    }
    let magic = u32::from_le_bytes(bytes[0..4].try_into().unwrap());
    let version = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
    if magic != SNAPSHOT_MAGIC {
        return Err(RecoverError::BadSnapshot(PersistError::BadHeader));
    }
    let ops = u64::from_le_bytes(bytes[8..16].try_into().unwrap());
    let payload = match version {
        VERSION_1 => &bytes[SNAP_HEADER_V1_BYTES..],
        VERSION_2 => {
            if bytes.len() < SNAP_HEADER_V2_BYTES {
                return Err(RecoverError::BadSnapshot(PersistError::BadHeader));
            }
            let stored = u32::from_le_bytes(bytes[16..20].try_into().unwrap());
            let payload = &bytes[SNAP_HEADER_V2_BYTES..];
            let mut crc = Crc32::new();
            crc.update(&ops.to_le_bytes()).update(payload);
            if stored != crc.finish() {
                return Err(RecoverError::BadSnapshot(PersistError::Corrupted(
                    "snapshot checksum mismatch",
                )));
            }
            payload
        }
        _ => return Err(RecoverError::BadSnapshot(PersistError::BadHeader)),
    };
    let index = TreapOrderCore::load(payload, seed).map_err(RecoverError::BadSnapshot)?;
    Ok((ops, index))
}

// ------------------------------------------------------------ recovery

/// Which rung of the recovery escalation ladder restored the state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryRung {
    /// Newest snapshot + fully-intact journal: the clean path.
    Primary,
    /// Newest snapshot, but the journal carried a damaged suffix that
    /// was truncated to the last checksummed frame.
    TruncatedTail,
    /// The newest snapshot generation was unusable; this older retained
    /// generation recovered (journal replay covered the difference).
    OlderGeneration(usize),
    /// The journal was unusable or behind the snapshot; state comes from
    /// the snapshot alone and the journal was reset at its `ops`.
    SnapshotOnly,
    /// No usable snapshot: the whole journal replayed from an empty
    /// graph.
    GenesisReplay,
}

impl std::fmt::Display for RecoveryRung {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecoveryRung::Primary => write!(f, "primary"),
            RecoveryRung::TruncatedTail => write!(f, "truncated-tail"),
            RecoveryRung::OlderGeneration(g) => write!(f, "older-generation({g})"),
            RecoveryRung::SnapshotOnly => write!(f, "snapshot-only"),
            RecoveryRung::GenesisReplay => write!(f, "genesis-replay"),
        }
    }
}

/// What [`recover`] did and what it could not save.
#[derive(Debug, Clone)]
pub struct RecoveryReport {
    /// The ladder rung that produced the restored state.
    pub rung: RecoveryRung,
    /// Snapshot generation used (0 = newest), `None` for genesis.
    pub snapshot_generation: Option<usize>,
    /// Snapshot generations that existed but failed validation (or could
    /// not be paired with the journal).
    pub snapshots_rejected: usize,
    /// Events the restored state covers — journal seqs `0..durable_ops`
    /// are reflected, everything past them is lost.
    pub durable_ops: u64,
    /// Events replayed from the journal on top of the snapshot.
    pub replayed: usize,
    /// Journal format version read (1 or 2; 0 = missing/unreadable).
    pub journal_version: u32,
    /// Why the journal's readable prefix ended early, if it did.
    pub journal_damage: Option<&'static str>,
    /// Journal bytes discarded past the last checksummed frame.
    pub journal_truncated_bytes: u64,
    /// Whether the journal was reset (fresh v2 header at
    /// `base = durable_ops`) because it could not be repaired in place.
    pub journal_reset: bool,
    /// Wall-clock time the whole ladder took, nanoseconds. Purely
    /// observational (per-rung recovery timing for the metrics layer);
    /// never feeds back into recovery decisions.
    pub elapsed_ns: u64,
}

impl RecoveryReport {
    /// Stable metric name of the rung that fired (generation-agnostic),
    /// matching the `recovery_rung_*` counter names the ingest service
    /// registers.
    pub fn rung_metric(&self) -> &'static str {
        match self.rung {
            RecoveryRung::Primary => "primary",
            RecoveryRung::TruncatedTail => "truncated_tail",
            RecoveryRung::OlderGeneration(_) => "older_generation",
            RecoveryRung::SnapshotOnly => "snapshot_only",
            RecoveryRung::GenesisReplay => "genesis_replay",
        }
    }

    /// One-line JSON for ops logs and bench embedding.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"rung\":\"{}\",\"snapshot_generation\":{},\"snapshots_rejected\":{},\
             \"durable_ops\":{},\"replayed\":{},\"journal_version\":{},\
             \"journal_damage\":{},\"journal_truncated_bytes\":{},\"journal_reset\":{},\
             \"elapsed_ns\":{}}}",
            self.rung,
            match self.snapshot_generation {
                Some(g) => g.to_string(),
                None => "null".to_string(),
            },
            self.snapshots_rejected,
            self.durable_ops,
            self.replayed,
            self.journal_version,
            match self.journal_damage {
                Some(d) => format!("\"{d}\""),
                None => "null".to_string(),
            },
            self.journal_truncated_bytes,
            self.journal_reset,
            self.elapsed_ns,
        )
    }
}

impl std::fmt::Display for RecoveryReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "rung {} · durable {} ops · {} replayed",
            self.rung, self.durable_ops, self.replayed
        )?;
        if let Some(g) = self.snapshot_generation {
            write!(f, " · snapshot gen {g}")?;
        }
        if self.snapshots_rejected > 0 {
            write!(f, " · {} snapshot(s) rejected", self.snapshots_rejected)?;
        }
        if let Some(damage) = self.journal_damage {
            write!(
                f,
                " · journal {damage} ({} bytes dropped)",
                self.journal_truncated_bytes
            )?;
        }
        if self.journal_reset {
            write!(f, " · journal reset")?;
        }
        Ok(())
    }
}

/// What [`recover`] restored.
pub struct Recovered {
    /// The rebuilt engine — planner-driven, order index fresh only if
    /// the tail replay ended on an order-based batch (call
    /// [`PlannedCore::ensure_order_fresh`] if you need it eagerly).
    pub engine: PlannedCore,
    /// Events the restored state covers — the journal seq the resumed
    /// service must continue from ([`crate::IngestService::spawn_recovered`]
    /// threads it into `Journaled::with_start_seq`).
    pub next_seq: u64,
    /// Events replayed from the journal tail (those past the snapshot).
    pub replayed: usize,
    /// Aggregate stats of the tail replay.
    pub replay_stats: UpdateStats,
    /// Whether an index snapshot was used (vs a full-journal replay).
    pub from_snapshot: bool,
    /// Whether the journal carried damage (the intact prefix was
    /// recovered; the damaged bytes are unrecoverable by design).
    pub torn_tail: bool,
    /// Which ladder rung fired and exactly what was lost.
    pub report: RecoveryReport,
}

/// Restores a service's engine from its durability directory, escalating
/// down a ladder of sources until one validates:
///
/// 1. newest snapshot + intact journal tail ([`RecoveryRung::Primary`]);
/// 2. same, with the journal's damaged suffix truncated to the last
///    checksummed frame ([`RecoveryRung::TruncatedTail`]);
/// 3. an older retained snapshot generation when newer ones fail
///    validation ([`RecoveryRung::OlderGeneration`]);
/// 4. the snapshot alone, resetting the journal, when the journal is
///    unusable or lost a suffix the snapshot still covers
///    ([`RecoveryRung::SnapshotOnly`]);
/// 5. a full replay from the empty universe when no snapshot is usable
///    ([`RecoveryRung::GenesisReplay`]).
///
/// The tail replays **through the planner** ([`replay_batched`] onto a
/// [`PlannedCore`]): `replay_batch` groups events into micro-batches and
/// the planner prices each one (recompute vs order-based passes), so a
/// long tail replays at batch speed. The returned
/// [`Recovered::report`] says which rung fired and exactly what was
/// lost; repairs (suffix truncation, journal reset) are performed before
/// returning, so a subsequent [`crate::IngestService::spawn_recovered`]
/// opens clean files.
pub fn recover(
    d: &DurabilityConfig,
    seed: u64,
    planner: PlannerConfig,
    replay_batch: usize,
) -> Result<Recovered, RecoverError> {
    let t0 = std::time::Instant::now();
    let mut rec = recover_impl(d, seed, planner, replay_batch)?;
    rec.report.elapsed_ns = t0.elapsed().as_nanos() as u64;
    Ok(rec)
}

fn recover_impl(
    d: &DurabilityConfig,
    seed: u64,
    planner: PlannerConfig,
    replay_batch: usize,
) -> Result<Recovered, RecoverError> {
    let storage = &d.storage;
    let raw_len = std::fs::metadata(&d.journal_path).map(|m| m.len()).ok();
    let journal: Option<JournalContents> = match storage.with(|io| io.read(&d.journal_path)) {
        Ok(bytes) => parse_journal(&bytes).ok(),
        Err(e) if e.kind() == io::ErrorKind::NotFound => None,
        Err(e) => return Err(RecoverError::Io(e)),
    };

    // Scan the snapshot generations newest-first, keeping the best
    // replayable candidate (snapshot + journal tail) and, separately,
    // the newest candidate that is *ahead* of the journal's durable
    // prefix (usable only by resetting the journal).
    let mut rejected = 0usize;
    let mut replayable: Option<(usize, u64, TreapOrderCore)> = None;
    let mut ahead: Option<(usize, u64, TreapOrderCore)> = None;
    for g in 0..d.snapshot_generations.max(1) {
        let p = snapshot_generation_path(&d.snapshot_path, g);
        if !p.exists() {
            continue;
        }
        let (ops, index) = match load_snapshot_with(storage, &p, seed) {
            Ok(loaded) => loaded,
            Err(_) => {
                rejected += 1;
                continue;
            }
        };
        match &journal {
            Some(j) => {
                if index.graph().num_vertices() != j.n {
                    rejected += 1;
                    continue;
                }
                if ops >= j.base && ops <= j.durable_seq() {
                    replayable = Some((g, ops, index));
                    break;
                }
                if ops > j.durable_seq() && ahead.is_none() {
                    // The journal lost a suffix this snapshot still
                    // covers; hold it in case no replayable rung exists.
                    ahead = Some((g, ops, index));
                } else {
                    rejected += 1;
                }
            }
            None => {
                // No usable journal at all: the newest loadable snapshot
                // is the only source of truth.
                ahead = Some((g, ops, index));
                break;
            }
        }
    }

    // Prefer whichever source covers the longest durable prefix. An
    // `ahead` candidate by construction covers strictly more events than
    // the journal's durable prefix (the journal lost a suffix the
    // snapshot still reflects), so when both exist the snapshot-only
    // rung loses nothing the journal still has.
    if ahead.is_some() {
        replayable = None;
    }

    if let Some((generation, ops, index)) = replayable {
        let j = journal.as_ref().expect("replayable requires a journal");
        let damage = j.damage;
        let truncated = raw_len
            .unwrap_or(j.intact_bytes)
            .saturating_sub(j.intact_bytes);
        if damage.is_some() {
            storage.with(|io| io.truncate(&d.journal_path, j.intact_bytes))?;
        }
        let rung = match (generation, damage) {
            (0, None) => RecoveryRung::Primary,
            (0, Some(_)) => RecoveryRung::TruncatedTail,
            (g, _) => RecoveryRung::OlderGeneration(g),
        };
        let mut engine = PlannedCore::from_parts(index, Planner::new(planner));
        let tail_at = (ops - j.base) as usize;
        let tail = j.events[tail_at..].iter().map(|&(_, e)| e);
        let replay_stats = replay_batched(&mut engine, tail, replay_batch.max(1));
        let replayed = j.events.len() - tail_at;
        return Ok(Recovered {
            engine,
            next_seq: j.durable_seq(),
            replayed,
            replay_stats,
            from_snapshot: true,
            torn_tail: damage.is_some(),
            report: RecoveryReport {
                rung,
                snapshot_generation: Some(generation),
                snapshots_rejected: rejected,
                durable_ops: j.durable_seq(),
                replayed,
                journal_version: j.version,
                journal_damage: damage,
                journal_truncated_bytes: truncated,
                journal_reset: false,
                elapsed_ns: 0,
            },
        });
    }

    if let Some((generation, ops, index)) = ahead {
        // Snapshot-only: reset the journal to an empty v2 file based at
        // the snapshot's coverage, so the resumed service appends from a
        // consistent seq.
        let n = index.graph().num_vertices();
        write_journal_atomic(storage, &d.journal_path, &encode_journal_header(n, ops))?;
        let engine = PlannedCore::from_parts(index, Planner::new(planner));
        return Ok(Recovered {
            engine,
            next_seq: ops,
            replayed: 0,
            replay_stats: UpdateStats::default(),
            from_snapshot: true,
            torn_tail: journal.as_ref().is_some_and(|j| j.damage.is_some()),
            report: RecoveryReport {
                rung: RecoveryRung::SnapshotOnly,
                snapshot_generation: Some(generation),
                snapshots_rejected: rejected,
                durable_ops: ops,
                replayed: 0,
                journal_version: journal.as_ref().map(|j| j.version).unwrap_or(0),
                journal_damage: journal.as_ref().and_then(|j| j.damage),
                journal_truncated_bytes: raw_len.unwrap_or(0),
                journal_reset: true,
                elapsed_ns: 0,
            },
        });
    }

    // Genesis: no usable snapshot anywhere — the journal must carry the
    // full history from seq 0.
    let Some(j) = journal else {
        return Err(RecoverError::BadJournal(
            "journal file missing or unreadable, and no usable snapshot",
        ));
    };
    if j.base != 0 {
        return Err(RecoverError::Mismatch(
            "journal starts past genesis with no usable snapshot",
        ));
    }
    let truncated = raw_len
        .unwrap_or(j.intact_bytes)
        .saturating_sub(j.intact_bytes);
    if j.damage.is_some() {
        storage.with(|io| io.truncate(&d.journal_path, j.intact_bytes))?;
    }
    let mut engine = PlannedCore::with_config(DynamicGraph::with_vertices(j.n), seed, planner);
    let replay_stats = replay_batched(
        &mut engine,
        j.events.iter().map(|&(_, e)| e),
        replay_batch.max(1),
    );
    Ok(Recovered {
        engine,
        next_seq: j.durable_seq(),
        replayed: j.events.len(),
        replay_stats,
        from_snapshot: false,
        torn_tail: j.damage.is_some(),
        report: RecoveryReport {
            rung: RecoveryRung::GenesisReplay,
            snapshot_generation: None,
            snapshots_rejected: rejected,
            durable_ops: j.durable_seq(),
            replayed: j.events.len(),
            journal_version: j.version,
            journal_damage: j.damage,
            journal_truncated_bytes: truncated,
            journal_reset: false,
            elapsed_ns: 0,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::{FaultKind, FaultPlan, OpClass};
    use kcore_maint::journal::Journaled;

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join("kcore_ingest_durability")
            .join(name);
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn path_graph(n: usize) -> DynamicGraph {
        let mut g = DynamicGraph::with_vertices(n);
        for v in 0..n as u32 - 1 {
            g.insert_edge_unchecked(v, v + 1);
        }
        g
    }

    /// Writes a v1-format journal byte-for-byte like the PR-5 code did.
    fn write_v1_journal(path: &Path, n: usize, events: &[(u64, GraphEvent)]) {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&JOURNAL_MAGIC.to_le_bytes());
        bytes.extend_from_slice(&VERSION_1.to_le_bytes());
        bytes.extend_from_slice(&(n as u32).to_le_bytes());
        for &(seq, event) in events {
            encode_record(&mut bytes, seq, event);
        }
        std::fs::write(path, bytes).unwrap();
    }

    /// Writes a v2-format journal byte-for-byte like the PR-7 code did:
    /// v2 header, then one absolute-record frame per `frames` element.
    fn write_v2_journal(path: &Path, n: usize, frames: &[Vec<(u64, GraphEvent)>]) {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&JOURNAL_MAGIC.to_le_bytes());
        bytes.extend_from_slice(&VERSION_2.to_le_bytes());
        bytes.extend_from_slice(&(n as u32).to_le_bytes());
        bytes.extend_from_slice(&0u64.to_le_bytes());
        let crc = crc32(&bytes[..20]);
        bytes.extend_from_slice(&crc.to_le_bytes());
        for frame in frames {
            bytes.extend_from_slice(&FRAME_MAGIC.to_le_bytes());
            bytes.extend_from_slice(&(frame.len() as u32).to_le_bytes());
            for &(seq, event) in frame {
                let at = bytes.len();
                encode_record(&mut bytes, seq, event);
                let crc = crc32(&bytes[at..at + RECORD_BYTES]);
                bytes.extend_from_slice(&crc.to_le_bytes());
            }
        }
        std::fs::write(path, bytes).unwrap();
    }

    #[test]
    fn journal_roundtrip_and_reopen_append() {
        let dir = tmpdir("roundtrip");
        let jp = dir.join("j.kjrn");
        let storage = StorageHandle::real();
        let mut j = Journaled::new(TreapOrderCore::new(path_graph(6), 1));
        let mut sink = JournalSink::open(&jp, 6, false, &storage).unwrap();
        j.insert_edge(0, 2).unwrap();
        j.insert_edge(0, 3).unwrap();
        sink.append(&j.drain_since(0)).unwrap();
        drop(sink);

        // Re-open for append (header validated), ship one more.
        let mut sink = JournalSink::open(&jp, 6, false, &storage).unwrap();
        assert_eq!(sink.existing(), 2);
        j.remove_edge(0, 2).unwrap();
        sink.append(&j.drain_since(2)).unwrap();
        assert_eq!(sink.appended(), 1);
        drop(sink);

        let contents = read_journal(&jp).unwrap();
        assert_eq!(contents.n, 6);
        assert_eq!(contents.version, VERSION_3);
        assert_eq!(contents.base, 0);
        assert!(contents.damage.is_none());
        assert_eq!(
            contents.events,
            vec![
                (0, GraphEvent::EdgeInserted(0, 2)),
                (1, GraphEvent::EdgeInserted(0, 3)),
                (2, GraphEvent::EdgeRemoved(0, 2)),
            ]
        );
        assert_eq!(contents.intact_bytes, std::fs::metadata(&jp).unwrap().len());

        // Wrong universe on re-open is refused.
        assert!(JournalSink::open(&jp, 7, false, &storage).is_err());
    }

    #[test]
    fn torn_tail_yields_intact_prefix() {
        let dir = tmpdir("torn");
        let jp = dir.join("j.kjrn");
        // Journal-only recovery (no checkpoint): the engine must start
        // from the empty universe, since only events are journaled.
        let storage = StorageHandle::real();
        let mut j = Journaled::new(TreapOrderCore::new(DynamicGraph::with_vertices(5), 1));
        let mut sink = JournalSink::open(&jp, 5, false, &storage).unwrap();
        j.insert_edge(0, 2).unwrap();
        sink.append(&j.drain_since(0)).unwrap();
        j.insert_edge(1, 4).unwrap();
        sink.append(&j.drain_since(1)).unwrap();
        drop(sink);

        // Chop mid-frame: the second frame loses its record's last bytes.
        let bytes = std::fs::read(&jp).unwrap();
        std::fs::write(&jp, &bytes[..bytes.len() - 5]).unwrap();
        let contents = read_journal(&jp).unwrap();
        assert!(contents.damage.is_some());
        assert_eq!(contents.events, vec![(0, GraphEvent::EdgeInserted(0, 2))]);

        // And recovery over the torn journal still works on the prefix.
        let d = DurabilityConfig {
            journal_path: jp.clone(),
            snapshot_path: dir.join("none.ksnp"),
            ..DurabilityConfig::in_dir(&dir)
        };
        let rec = recover(&d, 3, PlannerConfig::default(), 64).unwrap();
        assert!(rec.torn_tail);
        assert!(!rec.from_snapshot);
        assert_eq!(rec.next_seq, 1);
        assert_eq!(rec.report.rung, RecoveryRung::GenesisReplay);
        assert_eq!(rec.report.durable_ops, 1);
        assert!(rec.report.journal_truncated_bytes > 0);
        let mut oracle = DynamicGraph::with_vertices(5);
        oracle.insert_edge(0, 2).unwrap();
        assert_eq!(
            rec.engine.cores(),
            &kcore_decomp::core_decomposition(&oracle)[..]
        );
        // recover() repaired the file: re-reading it is clean now.
        assert!(read_journal(&jp).unwrap().damage.is_none());
    }

    #[test]
    fn snapshot_rejects_garbage_and_survives_rename_protocol() {
        let dir = tmpdir("snap");
        let sp = dir.join("s.ksnp");
        let index = TreapOrderCore::new(path_graph(4), 9);
        save_index_snapshot(&sp, 7, &index).unwrap();
        assert!(
            !sp.with_extension("ksnp.tmp").exists(),
            "temp file renamed away"
        );
        let (ops, loaded) = load_index_snapshot(&sp, 9).unwrap();
        assert_eq!(ops, 7);
        assert_eq!(loaded.cores(), index.cores());

        std::fs::write(&sp, b"not a snapshot at all").unwrap();
        assert!(matches!(
            load_index_snapshot(&sp, 9),
            Err(RecoverError::BadSnapshot(_))
        ));
    }

    #[test]
    fn fault_v1_journal_still_loads_and_upgrades_on_append() {
        let dir = tmpdir("v1compat");
        let jp = dir.join("j.kjrn");
        let events = vec![
            (0, GraphEvent::EdgeInserted(0, 1)),
            (1, GraphEvent::EdgeInserted(1, 2)),
            (2, GraphEvent::EdgeRemoved(0, 1)),
        ];
        write_v1_journal(&jp, 4, &events);

        // The version-aware reader accepts v1 …
        let contents = read_journal(&jp).unwrap();
        assert_eq!(contents.version, VERSION_1);
        assert_eq!(contents.events, events);
        assert!(contents.damage.is_none());

        // … recovery replays it …
        let d = DurabilityConfig {
            journal_path: jp.clone(),
            snapshot_path: dir.join("none.ksnp"),
            ..DurabilityConfig::in_dir(&dir)
        };
        let rec = recover(&d, 3, PlannerConfig::default(), 64).unwrap();
        assert_eq!(rec.next_seq, 3);
        assert_eq!(rec.report.journal_version, VERSION_1);
        let mut oracle = DynamicGraph::with_vertices(4);
        oracle.insert_edge(1, 2).unwrap();
        assert_eq!(
            rec.engine.cores(),
            &kcore_decomp::core_decomposition(&oracle)[..]
        );

        // … and re-opening for append upgrades the file to v3 in place.
        let storage = StorageHandle::real();
        let mut sink = JournalSink::open(&jp, 4, false, &storage).unwrap();
        assert_eq!(sink.existing(), 3);
        let mut j = Journaled::with_start_seq(TreapOrderCore::new(path_graph(4), 1), 3);
        j.insert_edge(0, 2).unwrap();
        sink.append(&j.drain_since(3)).unwrap();
        drop(sink);
        let upgraded = read_journal(&jp).unwrap();
        assert_eq!(upgraded.version, VERSION_3);
        assert_eq!(upgraded.events.len(), 4);
        assert!(upgraded.damage.is_none());

        // A torn v1 tail upgrades to just the intact prefix.
        write_v1_journal(&jp.with_extension("torn"), 4, &events);
        let tp = jp.with_extension("torn");
        let raw = std::fs::read(&tp).unwrap();
        std::fs::write(&tp, &raw[..raw.len() - 3]).unwrap();
        let sink = JournalSink::open(&tp, 4, false, &storage).unwrap();
        assert_eq!(sink.existing(), 2);
    }

    #[test]
    fn fault_v2_journal_still_loads_and_upgrades_on_append() {
        let dir = tmpdir("v2compat");
        let jp = dir.join("j.kjrn");
        let frames = vec![
            vec![
                (0, GraphEvent::EdgeInserted(0, 1)),
                (1, GraphEvent::EdgeInserted(1, 2)),
            ],
            vec![(2, GraphEvent::EdgeRemoved(0, 1))],
        ];
        write_v2_journal(&jp, 4, &frames);

        // The version-aware reader accepts v2 …
        let contents = read_journal(&jp).unwrap();
        assert_eq!(contents.version, VERSION_2);
        let flat: Vec<(u64, GraphEvent)> = frames.iter().flatten().copied().collect();
        assert_eq!(contents.events, flat);
        assert!(contents.damage.is_none());

        // … recovery replays it …
        let d = DurabilityConfig {
            journal_path: jp.clone(),
            snapshot_path: dir.join("none.ksnp"),
            ..DurabilityConfig::in_dir(&dir)
        };
        let rec = recover(&d, 3, PlannerConfig::default(), 64).unwrap();
        assert_eq!(rec.next_seq, 3);
        assert_eq!(rec.report.journal_version, VERSION_2);
        let mut oracle = DynamicGraph::with_vertices(4);
        oracle.insert_edge(1, 2).unwrap();
        assert_eq!(
            rec.engine.cores(),
            &kcore_decomp::core_decomposition(&oracle)[..]
        );

        // … and re-opening for append upgrades the file to v3 in place.
        let storage = StorageHandle::real();
        let mut sink = JournalSink::open(&jp, 4, false, &storage).unwrap();
        assert_eq!(sink.existing(), 3);
        let mut j = Journaled::with_start_seq(TreapOrderCore::new(path_graph(4), 1), 3);
        j.insert_edge(0, 2).unwrap();
        sink.append(&j.drain_since(3)).unwrap();
        drop(sink);
        let upgraded = read_journal(&jp).unwrap();
        assert_eq!(upgraded.version, VERSION_3);
        assert_eq!(upgraded.events.len(), 4);
        assert!(upgraded.damage.is_none());
    }

    #[test]
    fn delta_frames_roundtrip_hostile_id_patterns() {
        // Wide swings between consecutive ids, u > v, u == prev, max-id
        // vertices: every zigzag/LEB128 edge case in one frame.
        let n = u32::MAX;
        let pats = [
            (0u32, 1u32),
            (u32::MAX - 1, 0),
            (0, u32::MAX - 1),
            (5, 5 + 1),
            (5, 2),
            (1_000_000, 999_999),
        ];
        let entries: Vec<JournalEntry> = pats
            .iter()
            .enumerate()
            .map(|(i, &(u, v))| JournalEntry {
                seq: 7 + i as u64,
                event: if i % 2 == 0 {
                    GraphEvent::EdgeInserted(u, v)
                } else {
                    GraphEvent::EdgeRemoved(u, v)
                },
                transitions: Vec::new(),
            })
            .collect();
        let mut bytes = encode_journal_header(n as usize, 7);
        bytes.extend_from_slice(&encode_frame(&entries));
        let dir = tmpdir("hostile_deltas");
        let jp = dir.join("j.kjrn");
        std::fs::write(&jp, &bytes).unwrap();
        let contents = read_journal(&jp).unwrap();
        assert_eq!(contents.version, VERSION_3);
        assert!(contents.damage.is_none());
        let expect: Vec<(u64, GraphEvent)> = entries.iter().map(|e| (e.seq, e.event)).collect();
        assert_eq!(contents.events, expect);
    }

    #[test]
    fn fault_every_body_byte_flip_is_detected() {
        let dir = tmpdir("flip_sweep");
        let jp = dir.join("j.kjrn");
        let storage = StorageHandle::real();
        let mut j = Journaled::new(TreapOrderCore::new(DynamicGraph::with_vertices(8), 1));
        let mut sink = JournalSink::open(&jp, 8, false, &storage).unwrap();
        j.insert_edge(0, 1).unwrap();
        j.insert_edge(1, 2).unwrap();
        sink.append(&j.drain_since(0)).unwrap();
        j.insert_edge(2, 3).unwrap();
        j.remove_edge(0, 1).unwrap();
        sink.append(&j.drain_since(2)).unwrap();
        drop(sink);
        let clean = std::fs::read(&jp).unwrap();
        let clean_events = read_journal(&jp).unwrap().events;
        assert_eq!(clean_events.len(), 4);

        // Flip every single byte of the body (frames + records): the
        // reader must either still return a strict prefix of the clean
        // events (damage reported) or keep the file fully intact only
        // when the flip cancels out — which a single XOR never does.
        for at in HEADER_V2_BYTES..clean.len() {
            for mask in [0x01u8, 0x80, 0xFF] {
                let mut corrupt = clean.clone();
                corrupt[at] ^= mask;
                std::fs::write(&jp, &corrupt).unwrap();
                let contents = read_journal(&jp).unwrap();
                assert!(
                    contents.damage.is_some(),
                    "flip at byte {at} mask {mask:#x} went undetected"
                );
                assert!(
                    contents.events.len() < clean_events.len(),
                    "flip at byte {at} replayed a full corrupt stream"
                );
                assert_eq!(
                    contents.events[..],
                    clean_events[..contents.events.len()],
                    "flip at byte {at} corrupted the *prefix*"
                );
            }
        }

        // Header flips are fatal (nothing in the file can be trusted).
        for at in 0..HEADER_V2_BYTES {
            let mut corrupt = clean.clone();
            corrupt[at] ^= 0x01;
            std::fs::write(&jp, &corrupt).unwrap();
            assert!(
                read_journal(&jp).is_err(),
                "header flip at byte {at} went undetected"
            );
        }
    }

    #[test]
    fn fault_snapshot_rotation_and_older_generation_rung() {
        let dir = tmpdir("rotation");
        let d = DurabilityConfig::in_dir(&dir).generations(3);
        let storage = StorageHandle::real();

        // Build a journal of 4 inserts and snapshots at ops 2 and 4.
        let mut j = Journaled::new(TreapOrderCore::new(DynamicGraph::with_vertices(6), 7));
        let mut sink = JournalSink::open(&d.journal_path, 6, false, &storage).unwrap();
        j.insert_edge(0, 1).unwrap();
        j.insert_edge(1, 2).unwrap();
        sink.append(&j.drain_since(0)).unwrap();
        let mut payload = Vec::new();
        j.engine_mut().save(&mut payload).unwrap();
        persist_index_snapshot(&d, 2, &payload).unwrap();
        j.insert_edge(2, 3).unwrap();
        j.insert_edge(3, 4).unwrap();
        sink.append(&j.drain_since(2)).unwrap();
        payload.clear();
        j.engine_mut().save(&mut payload).unwrap();
        persist_index_snapshot(&d, 4, &payload).unwrap();
        drop(sink);

        // Both generations on disk; newest wins cleanly.
        assert!(snapshot_generation_path(&d.snapshot_path, 1).exists());
        let rec = recover(&d, 7, PlannerConfig::default(), 64).unwrap();
        assert_eq!(rec.report.rung, RecoveryRung::Primary);
        assert_eq!(rec.report.snapshot_generation, Some(0));
        assert_eq!(rec.replayed, 0);
        assert_eq!(rec.engine.cores(), j.engine().cores());

        // Corrupt the newest generation: the ladder falls back to gen 1
        // and replays the journal difference.
        let newest = std::fs::read(&d.snapshot_path).unwrap();
        let mut corrupt = newest.clone();
        let mid = corrupt.len() / 2;
        corrupt[mid] ^= 0xFF;
        std::fs::write(&d.snapshot_path, &corrupt).unwrap();
        let rec = recover(&d, 7, PlannerConfig::default(), 64).unwrap();
        assert_eq!(rec.report.rung, RecoveryRung::OlderGeneration(1));
        assert_eq!(rec.report.snapshots_rejected, 1);
        assert_eq!(rec.replayed, 2);
        assert_eq!(rec.engine.cores(), j.engine().cores());

        // Corrupt both: genesis replay still restores everything.
        std::fs::write(snapshot_generation_path(&d.snapshot_path, 1), b"junk").unwrap();
        let rec = recover(&d, 7, PlannerConfig::default(), 64).unwrap();
        assert_eq!(rec.report.rung, RecoveryRung::GenesisReplay);
        assert_eq!(rec.report.snapshots_rejected, 2);
        assert_eq!(rec.replayed, 4);
        assert_eq!(rec.engine.cores(), j.engine().cores());
    }

    #[test]
    fn fault_snapshot_only_rung_resets_journal() {
        let dir = tmpdir("snaponly");
        let d = DurabilityConfig::in_dir(&dir);
        let storage = StorageHandle::real();
        let mut j = Journaled::new(TreapOrderCore::new(DynamicGraph::with_vertices(5), 7));
        let mut sink = JournalSink::open(&d.journal_path, 5, false, &storage).unwrap();
        j.insert_edge(0, 1).unwrap();
        j.insert_edge(1, 2).unwrap();
        j.insert_edge(2, 3).unwrap();
        sink.append(&j.drain_since(0)).unwrap();
        drop(sink);
        let mut payload = Vec::new();
        j.engine_mut().save(&mut payload).unwrap();
        persist_index_snapshot(&d, 3, &payload).unwrap();

        // Destroy the journal header: the snapshot alone must carry the
        // state, and the journal is reset at its coverage.
        let mut bytes = std::fs::read(&d.journal_path).unwrap();
        bytes[0] ^= 0xFF;
        std::fs::write(&d.journal_path, &bytes).unwrap();
        let rec = recover(&d, 7, PlannerConfig::default(), 64).unwrap();
        assert_eq!(rec.report.rung, RecoveryRung::SnapshotOnly);
        assert!(rec.report.journal_reset);
        assert_eq!(rec.next_seq, 3);
        assert_eq!(rec.engine.cores(), j.engine().cores());
        let reset = read_journal(&d.journal_path).unwrap();
        assert_eq!(reset.base, 3);
        assert!(reset.events.is_empty());
        // The resumed service can append to the reset journal.
        let sink = JournalSink::open(&d.journal_path, 5, false, &storage).unwrap();
        assert_eq!(sink.existing(), 3);
    }

    #[test]
    fn fault_failed_append_truncates_partial_frame() {
        let dir = tmpdir("shortappend");
        let jp = dir.join("j.kjrn");
        let storage = StorageHandle::faulty(FaultPlan::new().fault(
            OpClass::JournalAppend,
            1,
            FaultKind::ShortWrite { keep: 10 },
        ));
        let mut j = Journaled::new(TreapOrderCore::new(DynamicGraph::with_vertices(4), 1));
        let mut sink = JournalSink::open(&jp, 4, false, &storage).unwrap();
        j.insert_edge(0, 1).unwrap();
        let tail = j.drain_since(0);
        // The scripted short write fails the append, but the sink repairs
        // the file back to the frame boundary …
        assert!(sink.append(&tail).is_err());
        // … so retrying the same entries lands cleanly.
        sink.append(&tail).unwrap();
        j.insert_edge(1, 2).unwrap();
        sink.append(&j.drain_since(1)).unwrap();
        drop(sink);
        let contents = read_journal(&jp).unwrap();
        assert!(contents.damage.is_none());
        assert_eq!(contents.events.len(), 2);
    }
}
