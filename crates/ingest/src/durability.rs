//! Durability for the ingest service: an append-only event journal, a
//! periodic index snapshot, and the [`recover`] path that composes them.
//!
//! The contract mirrors classic WAL + checkpoint systems, scoped to the
//! micro-batch: after every flushed batch the writer ships the
//! [`Journaled`] tail (via the incremental `drain_since` cursor) into the
//! journal file, and every `snapshot_every_batches` flushes it persists
//! the full index ([`OrderCore::save`] under a small header carrying the
//! covered-prefix length). A crash therefore loses at most the events
//! that never reached a flush — [`recover`] loads the last snapshot,
//! replays the journal tail **through the planner**
//! ([`replay_batched`] onto a [`PlannedCore`], the ROADMAP PR-4
//! leftover), and returns an engine bit-identical to a service that
//! cleanly processed the journaled prefix.
//!
//! ## File formats (little-endian)
//!
//! Journal: `"KJRN" u32 | version u32 | n u32`, then one 17-byte record
//! per event: `seq u64 | kind u8 (0 insert / 1 remove) | u u32 | v u32`.
//! Records are appended in seq order with no gaps; a torn tail (partial
//! record, or a seq that breaks monotonicity) ends the readable prefix
//! rather than failing recovery.
//!
//! Snapshot: `"KSNP" u32 | version u32 | ops u64`, then the
//! checksummed [`OrderCore::save`] payload. Written to a temp file and
//! renamed, so a crash mid-snapshot leaves the previous one intact.

use kcore_graph::DynamicGraph;
use kcore_maint::journal::{replay_batched, GraphEvent, JournalEntry};
use kcore_maint::{PersistError, PlannedCore, Planner, PlannerConfig, TreapOrderCore, UpdateStats};
use std::fs::{File, OpenOptions};
use std::io::{self, BufWriter, Read, Write};
use std::path::{Path, PathBuf};

const JOURNAL_MAGIC: u32 = 0x4B4A_524E; // "KJRN"
const SNAPSHOT_MAGIC: u32 = 0x4B53_4E50; // "KSNP"
const VERSION: u32 = 1;
const RECORD_BYTES: usize = 8 + 1 + 4 + 4;

/// Where and how often the service persists.
#[derive(Debug, Clone)]
pub struct DurabilityConfig {
    /// Append-only event journal.
    pub journal_path: PathBuf,
    /// Periodic full-index snapshot (temp-file + rename).
    pub snapshot_path: PathBuf,
    /// Persist the index every this many flushed batches (`0` = only on
    /// graceful shutdown).
    pub snapshot_every_batches: usize,
    /// `fsync` the journal after every shipped batch. Off by default:
    /// the bench measures the cheap mode, and the recovery contract
    /// (lose at most the unflushed tail) already holds per OS buffer.
    pub fsync: bool,
}

impl DurabilityConfig {
    /// Journal + snapshot under `dir` with shutdown-only snapshots.
    pub fn in_dir<P: AsRef<Path>>(dir: P) -> Self {
        let dir = dir.as_ref();
        DurabilityConfig {
            journal_path: dir.join("ingest.kjrn"),
            snapshot_path: dir.join("ingest.ksnp"),
            snapshot_every_batches: 0,
            fsync: false,
        }
    }

    /// Sets the periodic-snapshot cadence.
    pub fn snapshot_every(mut self, batches: usize) -> Self {
        self.snapshot_every_batches = batches;
        self
    }
}

/// Why recovery failed.
#[derive(Debug)]
pub enum RecoverError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The journal file is missing, not a journal, or header-corrupt.
    BadJournal(&'static str),
    /// The snapshot file exists but failed validation.
    BadSnapshot(PersistError),
    /// Snapshot and journal disagree (different vertex universe, or the
    /// snapshot covers events the journal does not contain).
    Mismatch(&'static str),
}

impl std::fmt::Display for RecoverError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecoverError::Io(e) => write!(f, "io error: {e}"),
            RecoverError::BadJournal(what) => write!(f, "bad journal: {what}"),
            RecoverError::BadSnapshot(e) => write!(f, "bad snapshot: {e}"),
            RecoverError::Mismatch(what) => write!(f, "snapshot/journal mismatch: {what}"),
        }
    }
}

impl std::error::Error for RecoverError {}

impl From<io::Error> for RecoverError {
    fn from(e: io::Error) -> Self {
        RecoverError::Io(e)
    }
}

/// The append-only journal file, opened once by the writer thread.
#[derive(Debug)]
pub struct JournalSink {
    out: BufWriter<File>,
    fsync: bool,
    /// Intact records the file already held when opened (0 for a fresh
    /// journal) — the seq the next appended record must carry.
    existing: u64,
    /// Records appended through this sink (not counting pre-existing
    /// ones when re-opened for append).
    appended: u64,
}

impl JournalSink {
    /// Creates the journal (writing the header) or re-opens an existing
    /// one for append after validating that its header matches `n`.
    pub fn open(path: &Path, n: usize, fsync: bool) -> io::Result<JournalSink> {
        let preexisting = std::fs::metadata(path).map(|m| m.len()).unwrap_or(0);
        if preexisting > 0 {
            let (header_n, events, torn) = read_journal(path).map_err(|e| match e {
                RecoverError::Io(io) => io,
                other => io::Error::new(io::ErrorKind::InvalidData, other.to_string()),
            })?;
            if header_n != n {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("journal declares {header_n} vertices, engine has {n}"),
                ));
            }
            let file = OpenOptions::new().append(true).open(path)?;
            if torn {
                // Drop the torn bytes so resumed appends continue the
                // intact prefix instead of landing behind garbage.
                let intact = 12 + (events.len() * RECORD_BYTES) as u64;
                file.set_len(intact)?;
            }
            return Ok(JournalSink {
                out: BufWriter::new(file),
                fsync,
                existing: events.len() as u64,
                appended: 0,
            });
        }
        let file = File::create(path)?;
        let mut out = BufWriter::new(file);
        out.write_all(&JOURNAL_MAGIC.to_le_bytes())?;
        out.write_all(&VERSION.to_le_bytes())?;
        out.write_all(&(n as u32).to_le_bytes())?;
        out.flush()?;
        Ok(JournalSink {
            out,
            fsync,
            existing: 0,
            appended: 0,
        })
    }

    /// Intact records the journal held when this sink opened it — the
    /// seq appends must resume at for the file to stay gap-free.
    pub fn existing(&self) -> u64 {
        self.existing
    }

    /// Appends one shipped tail (events only; transitions are a
    /// downstream-consumer concern, replay needs just the mutations) and
    /// flushes so the records survive the process.
    pub fn append(&mut self, entries: &[JournalEntry]) -> io::Result<()> {
        for e in entries {
            let (kind, u, v) = match e.event {
                GraphEvent::EdgeInserted(u, v) => (0u8, u, v),
                GraphEvent::EdgeRemoved(u, v) => (1u8, u, v),
            };
            self.out.write_all(&e.seq.to_le_bytes())?;
            self.out.write_all(&[kind])?;
            self.out.write_all(&u.to_le_bytes())?;
            self.out.write_all(&v.to_le_bytes())?;
        }
        self.appended += entries.len() as u64;
        self.out.flush()?;
        if self.fsync {
            self.out.get_ref().sync_data()?;
        }
        Ok(())
    }

    /// Records appended through this sink instance.
    pub fn appended(&self) -> u64 {
        self.appended
    }
}

/// What [`read_journal`] yields: `(vertex universe, events with seqs,
/// torn_tail)`.
pub type JournalContents = (usize, Vec<(u64, GraphEvent)>, bool);

/// Reads a journal. Stops cleanly at the first partial or non-monotone
/// record (`torn_tail = true`) — the intact prefix is still a valid
/// recovery source.
pub fn read_journal(path: &Path) -> Result<JournalContents, RecoverError> {
    let mut bytes = Vec::new();
    File::open(path)
        .map_err(|_| RecoverError::BadJournal("journal file missing or unreadable"))?
        .read_to_end(&mut bytes)?;
    if bytes.len() < 12 {
        return Err(RecoverError::BadJournal("shorter than the header"));
    }
    let word = |at: usize| u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap());
    if word(0) != JOURNAL_MAGIC || word(4) != VERSION {
        return Err(RecoverError::BadJournal("not a kcore journal"));
    }
    let n = word(8) as usize;
    let mut events = Vec::with_capacity((bytes.len() - 12) / RECORD_BYTES);
    let mut at = 12usize;
    let mut torn = false;
    let mut expected_seq = 0u64;
    while at + RECORD_BYTES <= bytes.len() {
        let seq = u64::from_le_bytes(bytes[at..at + 8].try_into().unwrap());
        let kind = bytes[at + 8];
        let u = word(at + 9);
        let v = word(at + 13);
        // Seqs are gap-free from 0 by construction; anything else is a
        // torn or corrupted tail, so the readable prefix ends here.
        if seq != expected_seq || kind > 1 {
            torn = true;
            break;
        }
        expected_seq += 1;
        events.push((
            seq,
            if kind == 0 {
                GraphEvent::EdgeInserted(u, v)
            } else {
                GraphEvent::EdgeRemoved(u, v)
            },
        ));
        at += RECORD_BYTES;
    }
    if at != bytes.len() && !torn {
        torn = true; // trailing partial record
    }
    Ok((n, events, torn))
}

/// Persists the index snapshot: header (+ covered-prefix length `ops`)
/// followed by the engine's checksummed index payload, via temp file +
/// rename so the previous snapshot survives a crash mid-write.
pub fn save_index_snapshot(path: &Path, ops: u64, index: &TreapOrderCore) -> io::Result<()> {
    let mut payload = Vec::new();
    index.save(&mut payload)?;
    write_snapshot_bytes(path, ops, &payload)
}

/// Snapshot writer over an already-serialised index payload (the service
/// writer produces the payload through its engine's persistence hook).
pub(crate) fn write_snapshot_bytes(path: &Path, ops: u64, payload: &[u8]) -> io::Result<()> {
    let tmp = path.with_extension("tmp");
    {
        let mut out = BufWriter::new(File::create(&tmp)?);
        out.write_all(&SNAPSHOT_MAGIC.to_le_bytes())?;
        out.write_all(&VERSION.to_le_bytes())?;
        out.write_all(&ops.to_le_bytes())?;
        out.write_all(payload)?;
        out.flush()?;
    }
    std::fs::rename(&tmp, path)?;
    Ok(())
}

/// Loads an index snapshot written by [`save_index_snapshot`]:
/// `(ops covered, restored index)`.
pub fn load_index_snapshot(path: &Path, seed: u64) -> Result<(u64, TreapOrderCore), RecoverError> {
    let mut bytes = Vec::new();
    File::open(path)?.read_to_end(&mut bytes)?;
    if bytes.len() < 16 {
        return Err(RecoverError::BadSnapshot(PersistError::BadHeader));
    }
    let magic = u32::from_le_bytes(bytes[0..4].try_into().unwrap());
    let version = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
    if magic != SNAPSHOT_MAGIC || version != VERSION {
        return Err(RecoverError::BadSnapshot(PersistError::BadHeader));
    }
    let ops = u64::from_le_bytes(bytes[8..16].try_into().unwrap());
    let index = TreapOrderCore::load(&bytes[16..], seed).map_err(RecoverError::BadSnapshot)?;
    Ok((ops, index))
}

/// What [`recover`] restored.
pub struct Recovered {
    /// The rebuilt engine — planner-driven, order index fresh only if
    /// the tail replay ended on an order-based batch (call
    /// [`PlannedCore::ensure_order_fresh`] if you need it eagerly).
    pub engine: PlannedCore,
    /// Events the restored state covers — the journal seq the resumed
    /// service must continue from ([`crate::IngestService::spawn_recovered`]
    /// threads it into `Journaled::with_start_seq`).
    pub next_seq: u64,
    /// Events replayed from the journal tail (those past the snapshot).
    pub replayed: usize,
    /// Aggregate stats of the tail replay.
    pub replay_stats: UpdateStats,
    /// Whether an index snapshot was used (vs a full-journal replay).
    pub from_snapshot: bool,
    /// Whether the journal ended in a torn record (the intact prefix was
    /// recovered; the torn bytes are unrecoverable by design).
    pub torn_tail: bool,
}

/// Restores a service's engine from its durability directory: last index
/// snapshot (if any) + journal-tail replay, batched through the adaptive
/// planner — `replay_batch` groups events into micro-batches and
/// [`PlannedCore`] prices each one (recompute vs order-based passes), so
/// a long tail replays at batch speed, not event-at-a-time speed.
pub fn recover(
    d: &DurabilityConfig,
    seed: u64,
    planner: PlannerConfig,
    replay_batch: usize,
) -> Result<Recovered, RecoverError> {
    let (n, events, torn_tail) = read_journal(&d.journal_path)?;
    let (covered, engine, from_snapshot) = if d.snapshot_path.exists() {
        let (ops, index) = load_index_snapshot(&d.snapshot_path, seed)?;
        if index.graph().num_vertices() != n {
            return Err(RecoverError::Mismatch("vertex universe differs"));
        }
        if ops > events.len() as u64 {
            // The snapshot claims events the journal does not have: the
            // journal is the source of truth, so this is unrecoverable
            // corruption, not a normal torn tail.
            return Err(RecoverError::Mismatch("snapshot ahead of journal"));
        }
        (
            ops,
            PlannedCore::from_parts(index, Planner::new(planner)),
            true,
        )
    } else {
        (
            0,
            PlannedCore::with_config(DynamicGraph::with_vertices(n), seed, planner),
            false,
        )
    };
    let mut recovered = Recovered {
        engine,
        next_seq: events.len() as u64,
        replayed: events.len() - covered as usize,
        replay_stats: UpdateStats::default(),
        from_snapshot,
        torn_tail,
    };
    let tail = events[covered as usize..].iter().map(|&(_, e)| e);
    recovered.replay_stats = replay_batched(&mut recovered.engine, tail, replay_batch.max(1));
    Ok(recovered)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kcore_maint::journal::Journaled;

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join("kcore_ingest_durability")
            .join(name);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn path_graph(n: usize) -> DynamicGraph {
        let mut g = DynamicGraph::with_vertices(n);
        for v in 0..n as u32 - 1 {
            g.insert_edge_unchecked(v, v + 1);
        }
        g
    }

    #[test]
    fn journal_roundtrip_and_reopen_append() {
        let dir = tmpdir("roundtrip");
        let jp = dir.join("j.kjrn");
        std::fs::remove_file(&jp).ok();
        let mut j = Journaled::new(TreapOrderCore::new(path_graph(6), 1));
        let mut sink = JournalSink::open(&jp, 6, false).unwrap();
        j.insert_edge(0, 2).unwrap();
        j.insert_edge(0, 3).unwrap();
        sink.append(&j.drain_since(0)).unwrap();
        drop(sink);

        // Re-open for append (header validated), ship one more.
        let mut sink = JournalSink::open(&jp, 6, false).unwrap();
        j.remove_edge(0, 2).unwrap();
        sink.append(&j.drain_since(2)).unwrap();
        assert_eq!(sink.appended(), 1);
        drop(sink);

        let (n, events, torn) = read_journal(&jp).unwrap();
        assert_eq!(n, 6);
        assert!(!torn);
        assert_eq!(
            events,
            vec![
                (0, GraphEvent::EdgeInserted(0, 2)),
                (1, GraphEvent::EdgeInserted(0, 3)),
                (2, GraphEvent::EdgeRemoved(0, 2)),
            ]
        );

        // Wrong universe on re-open is refused.
        assert!(JournalSink::open(&jp, 7, false).is_err());
    }

    #[test]
    fn torn_tail_yields_intact_prefix() {
        let dir = tmpdir("torn");
        let jp = dir.join("j.kjrn");
        std::fs::remove_file(&jp).ok();
        // Journal-only recovery (no checkpoint): the engine must start
        // from the empty universe, since only events are journaled.
        let mut j = Journaled::new(TreapOrderCore::new(DynamicGraph::with_vertices(5), 1));
        let mut sink = JournalSink::open(&jp, 5, false).unwrap();
        j.insert_edge(0, 2).unwrap();
        j.insert_edge(1, 4).unwrap();
        sink.append(&j.drain_since(0)).unwrap();
        drop(sink);

        // Chop mid-record: the second event's last bytes vanish.
        let bytes = std::fs::read(&jp).unwrap();
        std::fs::write(&jp, &bytes[..bytes.len() - 5]).unwrap();
        let (_, events, torn) = read_journal(&jp).unwrap();
        assert!(torn);
        assert_eq!(events, vec![(0, GraphEvent::EdgeInserted(0, 2))]);

        // And recovery over the torn journal still works on the prefix.
        let d = DurabilityConfig {
            journal_path: jp,
            snapshot_path: dir.join("none.ksnp"),
            snapshot_every_batches: 0,
            fsync: false,
        };
        std::fs::remove_file(&d.snapshot_path).ok();
        let rec = recover(&d, 3, PlannerConfig::default(), 64).unwrap();
        assert!(rec.torn_tail);
        assert!(!rec.from_snapshot);
        assert_eq!(rec.next_seq, 1);
        let mut oracle = DynamicGraph::with_vertices(5);
        oracle.insert_edge(0, 2).unwrap();
        assert_eq!(
            rec.engine.cores(),
            &kcore_decomp::core_decomposition(&oracle)[..]
        );
    }

    #[test]
    fn snapshot_rejects_garbage_and_survives_rename_protocol() {
        let dir = tmpdir("snap");
        let sp = dir.join("s.ksnp");
        let index = TreapOrderCore::new(path_graph(4), 9);
        save_index_snapshot(&sp, 7, &index).unwrap();
        assert!(!sp.with_extension("tmp").exists(), "temp file renamed away");
        let (ops, loaded) = load_index_snapshot(&sp, 9).unwrap();
        assert_eq!(ops, 7);
        assert_eq!(loaded.cores(), index.cores());

        std::fs::write(&sp, b"not a snapshot at all").unwrap();
        assert!(matches!(
            load_index_snapshot(&sp, 9),
            Err(RecoverError::BadSnapshot(_))
        ));
    }
}
