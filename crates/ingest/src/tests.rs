//! Service-level tests. Everything runs under the scripted clock — time
//! only advances through `tick` messages on the writer's own channel, so
//! every flush boundary, epoch, and journal byte is deterministic on any
//! host, including the 1-CPU CI container.

use crate::durability::{recover, DurabilityConfig};
use crate::service::{ClockMode, IngestConfig, IngestEngine, IngestError, IngestService};
use crate::sources::{apply_events, churn_events, window_event};
use crate::GraphEvent;
use kcore_decomp::{core_decomposition, Parallelism};
use kcore_gen::{barabasi_albert, churn_stream, timestamp_edges, SlidingWindow};
use kcore_graph::DynamicGraph;
use kcore_maint::{PlannerConfig, RecomputeCore};
use std::path::PathBuf;

fn path_graph(n: usize) -> DynamicGraph {
    let mut g = DynamicGraph::with_vertices(n);
    for v in 0..n as u32 - 1 {
        g.insert_edge_unchecked(v, v + 1);
    }
    g
}

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("kcore_ingest_service").join(name);
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn size_flush_publishes_epoch_snapshots() {
    let svc = IngestService::spawn_planned(path_graph(5), 1, IngestConfig::scripted().max_batch(2))
        .unwrap();
    let snaps = svc.subscribe().unwrap();
    let initial = svc.snapshots().load();
    assert_eq!((initial.epoch, initial.ops), (0, 0));

    svc.submit(GraphEvent::EdgeInserted(0, 2)).unwrap();
    svc.submit(GraphEvent::EdgeInserted(0, 3)).unwrap(); // size-flush
    let s1 = snaps.recv().unwrap();
    assert_eq!((s1.epoch, s1.ops), (1, 2));
    assert_eq!(s1.num_edges, 6);

    // A reader holding the old epoch still sees its own consistent view.
    assert_eq!(initial.num_edges, 4);

    let (report, engine) = svc.shutdown();
    assert_eq!(report.events, 2);
    assert_eq!(report.batches, 1);
    assert_eq!(report.epochs_published, 1);
    assert_eq!(
        engine.cores(),
        &core_decomposition(&apply_events(
            &path_graph(5),
            &[
                GraphEvent::EdgeInserted(0, 2),
                GraphEvent::EdgeInserted(0, 3)
            ]
        ))[..]
    );
}

#[test]
fn scripted_ticks_drive_interval_flushes() {
    let cfg = IngestConfig::scripted()
        .max_batch(1000)
        .flush_interval_ns(100);
    let svc = IngestService::spawn_planned(path_graph(6), 2, cfg).unwrap();
    let snaps = svc.subscribe().unwrap();

    // Batch opens at scripted t=0; a tick inside the interval must not
    // flush, one past it must.
    svc.submit(GraphEvent::EdgeInserted(0, 2)).unwrap();
    svc.tick(50).unwrap();
    svc.tick(150).unwrap();
    let s1 = snaps.recv().unwrap();
    assert_eq!((s1.epoch, s1.ops), (1, 1));
    assert_eq!(s1.published_at_ns, 150, "published on the flushing tick");

    // Next batch opens at t=150: flush exactly at deadline 250.
    svc.submit(GraphEvent::EdgeInserted(2, 4)).unwrap();
    svc.tick(249).unwrap();
    svc.tick(250).unwrap();
    let s2 = snaps.recv().unwrap();
    assert_eq!((s2.epoch, s2.ops), (2, 2));

    let (report, _) = svc.shutdown();
    assert_eq!(report.batches, 2);
    // Scripted latencies are synthetic but recorded per flush.
    assert_eq!(report.batch_apply.count(), 2);
}

#[test]
fn explicit_flush_is_a_barrier_covering_all_submitted() {
    let svc =
        IngestService::spawn_planned(path_graph(8), 3, IngestConfig::scripted().max_batch(1000))
            .unwrap();
    let events = [
        GraphEvent::EdgeInserted(0, 7),
        GraphEvent::EdgeInserted(2, 6),
        GraphEvent::EdgeRemoved(3, 4),
        GraphEvent::EdgeInserted(2, 6), // duplicate: skipped, still counted
    ];
    for &e in &events {
        svc.submit(e).unwrap();
    }
    let snap = svc.flush().unwrap();
    assert_eq!(snap.ops, events.len() as u64);
    let oracle = apply_events(&path_graph(8), &events);
    assert_eq!(snap.cores.to_vec(), core_decomposition(&oracle));
    assert_eq!(snap.num_edges, oracle.num_edges());
    // Histogram and degeneracy agree with the cores they ship with.
    let max = snap.cores.iter().max().unwrap();
    assert_eq!(snap.degeneracy, max);
    assert_eq!(snap.histogram.iter().sum::<usize>(), snap.num_vertices);
    // Flushing again without new events republishes nothing.
    let again = svc.flush().unwrap();
    assert_eq!(again.epoch, snap.epoch);
    let (report, _) = svc.shutdown();
    assert_eq!(report.update_stats.skipped, 1);
}

#[test]
fn bounded_queue_reports_queue_full_under_backpressure() {
    let svc = IngestService::spawn_planned(
        path_graph(4),
        4,
        IngestConfig::scripted().queue_capacity(3).max_batch(1000),
    )
    .unwrap();
    // Park the writer: the queue is drained (the pause ack proves the
    // writer consumed everything before parking), then fills to exactly
    // the configured bound.
    let pause = svc.pause().unwrap();
    for i in 0..3u32 {
        svc.try_submit(GraphEvent::EdgeInserted(0, 2 + (i % 2)))
            .unwrap();
    }
    assert_eq!(
        svc.try_submit(GraphEvent::EdgeInserted(1, 3)),
        Err(IngestError::QueueFull),
        "capacity-th + 1 submission must backpressure"
    );
    drop(pause); // resume
    let snap = svc.flush().unwrap();
    assert_eq!(snap.ops, 3, "rejected event was genuinely not enqueued");
    let (report, _) = svc.shutdown();
    assert_eq!(report.events, 3);
}

#[test]
fn drop_is_graceful_and_abort_is_not() {
    // Graceful drop: pending events are flushed and published before the
    // writer exits; the snapshot handle outlives the service.
    let svc = IngestService::spawn_planned(path_graph(3), 1, IngestConfig::scripted()).unwrap();
    let handle = svc.snapshots();
    let snaps = svc.subscribe().unwrap();
    svc.submit(GraphEvent::EdgeInserted(0, 2)).unwrap();
    drop(svc);
    let last = snaps.recv().unwrap();
    assert_eq!(last.ops, 1);
    assert!(snaps.recv().is_err(), "writer gone after drop");
    assert_eq!(handle.load().ops, 1, "handle still serves the final epoch");

    // Abort: the buffered event is dropped on the floor — the published
    // state never advances past what was flushed.
    let svc = IngestService::spawn_planned(path_graph(3), 1, IngestConfig::scripted()).unwrap();
    let handle = svc.snapshots();
    svc.submit(GraphEvent::EdgeInserted(0, 2)).unwrap();
    svc.abort();
    assert_eq!(handle.load().ops, 0, "aborted writer must not flush");
}

#[test]
fn churn_stream_end_to_end_matches_oracle() {
    // The acceptance workload, test-sized: a full churn stream through
    // the service, mixed flush triggers, final state bit-identical to
    // the recompute oracle.
    let base = barabasi_albert(80, 3, 7);
    let svc =
        IngestService::spawn_planned(base.clone(), 11, IngestConfig::scripted().max_batch(32))
            .unwrap();
    let mut all_events: Vec<GraphEvent> = Vec::new();
    for (i, b) in churn_stream(&base, 10, 12, 8, 23).iter().enumerate() {
        for e in churn_events(b) {
            all_events.push(e);
            svc.submit(e).unwrap();
        }
        if i % 3 == 0 {
            let snap = svc.flush().unwrap();
            // Snapshot consistency at an arbitrary mid-stream barrier.
            let oracle = apply_events(&base, &all_events[..snap.ops as usize]);
            assert_eq!(snap.cores.to_vec(), core_decomposition(&oracle));
        }
    }
    let (report, engine) = svc.shutdown();
    assert_eq!(report.events, all_events.len() as u64);
    assert_eq!(report.update_stats.skipped, 0, "churn streams replay clean");
    let oracle = apply_events(&base, &all_events);
    assert_eq!(engine.cores(), &core_decomposition(&oracle)[..]);
}

#[test]
fn sliding_window_stream_drains_to_empty() {
    let g = barabasi_albert(50, 2, 19);
    let n = 50;
    let ts = timestamp_edges(&g, 3, 5);
    let svc = IngestService::spawn_planned(
        DynamicGraph::with_vertices(n),
        13,
        IngestConfig::scripted().max_batch(16),
    )
    .unwrap();
    let mut live = DynamicGraph::with_vertices(n);
    let mut steps = 0usize;
    for op in SlidingWindow::new(ts, 30) {
        match op {
            kcore_gen::WindowOp::Admit(u, v) => live.insert_edge_unchecked(u, v),
            kcore_gen::WindowOp::Expire(u, v) => {
                live.remove_edge(u, v).unwrap();
            }
        }
        svc.submit(window_event(op)).unwrap();
        steps += 1;
        if steps.is_multiple_of(37) {
            let snap = svc.flush().unwrap();
            assert_eq!(snap.cores.to_vec(), core_decomposition(&live));
            assert_eq!(snap.num_edges, live.num_edges());
        }
    }
    let (report, engine) = svc.shutdown();
    assert_eq!(report.update_stats.skipped, 0);
    assert_eq!(engine.graph().num_edges(), 0, "window fully expired");
    assert!(engine.cores().iter().all(|&c| c == 0));
}

#[test]
fn recompute_engine_runs_the_generic_service() {
    // CoreMaintainer-generic: the oracle engine through the same loop.
    let base = path_graph(6);
    let svc = IngestService::spawn_with_engine(
        RecomputeCore::new(base.clone()),
        0,
        IngestConfig::scripted().max_batch(2),
    )
    .unwrap();
    let events = [
        GraphEvent::EdgeInserted(0, 5),
        GraphEvent::EdgeInserted(1, 4),
        GraphEvent::EdgeRemoved(2, 3),
    ];
    for &e in &events {
        svc.submit(e).unwrap();
    }
    let snap = svc.flush().unwrap();
    assert_eq!(
        snap.cores.to_vec(),
        core_decomposition(&apply_events(&path_graph(6), &events))
    );
    // No change tracking on this engine: the mirror syncs via the
    // chunk-compare fallback, and the histogram still ships consistent.
    assert_eq!(snap.histogram.iter().sum::<usize>(), 6);
    let (report, engine) = svc.shutdown();
    assert_eq!(report.tracked_drains, 0, "oracle engine has no tracking");
    assert!(report.full_syncs > 0, "fallback sync path must have run");
    // No persistent index form on this engine.
    let mut sinkhole = Vec::new();
    let mut engine = engine;
    assert!(engine.persist_index(&mut sinkhole).is_err());
}

#[test]
fn durable_roundtrip_recovers_graceful_shutdown_state() {
    let dir = tmpdir("graceful");
    let d = DurabilityConfig::in_dir(&dir).snapshot_every(2);
    let base = barabasi_albert(60, 3, 3);
    let svc = IngestService::spawn_planned(
        base.clone(),
        17,
        IngestConfig::scripted().max_batch(16).durable(d.clone()),
    )
    .unwrap();
    let mut events = Vec::new();
    for b in churn_stream(&base, 6, 10, 6, 5) {
        for e in churn_events(&b) {
            events.push(e);
            svc.submit(e).unwrap();
        }
        svc.flush().unwrap();
    }
    let (report, engine) = svc.shutdown();
    assert!(report.snapshots_persisted >= 3, "periodic + final persists");
    assert_eq!(report.entries_shipped, events.len() as u64);

    let rec = recover(&d, 99, PlannerConfig::default(), 64).unwrap();
    assert!(rec.from_snapshot);
    assert!(!rec.torn_tail);
    assert_eq!(rec.next_seq, events.len() as u64);
    assert_eq!(rec.engine.cores(), engine.cores());
    // The final persist covers everything: zero tail replay needed.
    assert_eq!(rec.replayed, 0);

    // A *fresh* spawn over the populated durability dir must be refused:
    // its seqs would restart at 0 and corrupt the journal's gap-free
    // invariant (resume goes through recover() + spawn_recovered).
    assert!(IngestService::spawn_planned(
        base.clone(),
        17,
        IngestConfig::scripted().durable(d.clone()),
    )
    .is_err());
    let rec = recover(&d, 99, PlannerConfig::default(), 64).unwrap();
    let resumed =
        IngestService::spawn_recovered(rec, IngestConfig::scripted().durable(d.clone())).unwrap();
    resumed.submit(GraphEvent::EdgeInserted(0, 59)).unwrap();
    let snap = resumed.flush().unwrap();
    assert_eq!(snap.ops, events.len() as u64 + 1, "seq resumed, not reset");
}

#[test]
fn crash_recovery_matches_never_crashed_run() {
    let dir = tmpdir("crash");
    let d = DurabilityConfig::in_dir(&dir); // snapshots only on demand
    let base = barabasi_albert(70, 3, 29);

    // Build the full stream up front; split into a flushed prefix A and
    // an in-flight suffix B that never reaches the journal.
    let mut stream: Vec<GraphEvent> = Vec::new();
    for b in churn_stream(&base, 8, 9, 7, 41) {
        stream.extend(churn_events(&b));
    }
    let cut = stream.len() * 2 / 3;
    let (part_a, part_b) = stream.split_at(cut);

    let svc = IngestService::spawn_planned(
        base.clone(),
        31,
        IngestConfig::scripted().max_batch(24).durable(d.clone()),
    )
    .unwrap();
    for &e in part_a {
        svc.submit(e).unwrap();
    }
    svc.flush().unwrap(); // A is applied AND journaled
    for &e in part_b {
        svc.submit(e).unwrap(); // B stays buffered (|B| < max_batch won't
                                // hold in general — but no tick and no
                                // flush means only size-flushes fire)
    }
    svc.abort(); // crash: pending + queued B lost, journal keeps A's prefix

    // Recovery must reproduce a never-crashed run over the journaled
    // prefix: checkpoint zero (persisted at spawn, covering the base
    // graph and nothing else) + the whole journaled tail replayed
    // through the planner.
    let rec = recover(&d, 57, PlannerConfig::default(), 32).unwrap();
    assert!(rec.from_snapshot, "checkpoint zero must exist");
    let journaled = rec.next_seq as usize;
    assert!(journaled >= part_a.len(), "flushed prefix must be durable");
    let clean = {
        let svc =
            IngestService::spawn_planned(base.clone(), 77, IngestConfig::scripted().max_batch(24))
                .unwrap();
        for &e in &stream[..journaled] {
            svc.submit(e).unwrap();
        }
        svc.shutdown().1
    };
    assert_eq!(rec.engine.cores(), clean.cores());
    assert_eq!(
        rec.engine.cores(),
        &core_decomposition(&apply_events(&base, &stream[..journaled]))[..]
    );

    // Resume the recovered service, feed the lost suffix again, and the
    // final state matches a run that never crashed at all.
    let resumed = IngestService::spawn_recovered(
        rec,
        IngestConfig::scripted().max_batch(24).durable(d.clone()),
    )
    .unwrap();
    for &e in &stream[journaled..] {
        resumed.submit(e).unwrap();
    }
    let (_, engine) = resumed.shutdown();
    assert_eq!(
        engine.cores(),
        &core_decomposition(&apply_events(&base, &stream))[..]
    );

    // And the re-opened journal is gap-free: a final recovery replays
    // the whole stream.
    let rec2 = recover(&d, 5, PlannerConfig::default(), 64).unwrap();
    assert_eq!(rec2.next_seq, stream.len() as u64);
    assert_eq!(rec2.engine.cores(), engine.cores());
}

#[test]
fn publication_shares_untouched_chunks_across_epochs() {
    // COW publication: a flush whose changes all land in one chunk must
    // republish every *other* chunk as the same allocation (pointer
    // equality), and the report must witness the O(changed) cost.
    use crate::chunked::CHUNK;
    let n = 3 * CHUNK; // 3 chunks of core numbers
    let svc = IngestService::spawn_planned(
        DynamicGraph::with_vertices(n),
        7,
        IngestConfig::scripted().max_batch(1000),
    )
    .unwrap();

    // Epoch 1: a triangle among vertices 0..3 (chunk 0 only).
    svc.submit(GraphEvent::EdgeInserted(0, 1)).unwrap();
    svc.submit(GraphEvent::EdgeInserted(1, 2)).unwrap();
    svc.submit(GraphEvent::EdgeInserted(0, 2)).unwrap();
    let s1 = svc.flush().unwrap();
    assert_eq!(s1.cores.num_chunks(), 3);
    assert_eq!(s1.core(0), 2);

    // Epoch 2: a single edge inside chunk 2.
    let far = (2 * CHUNK) as u32;
    svc.submit(GraphEvent::EdgeInserted(far, far + 1)).unwrap();
    let s2 = svc.flush().unwrap();
    assert_eq!(s2.core(far), 1);

    // Chunks 0 and 1 were untouched by the second flush: pointer-equal
    // across the two epochs. Chunk 2 was dirtied: a fresh allocation.
    assert!(
        s1.cores.chunk_ptr_eq(&s2.cores, 0),
        "chunk 0 must be shared"
    );
    assert!(
        s1.cores.chunk_ptr_eq(&s2.cores, 1),
        "chunk 1 must be shared"
    );
    assert!(
        !s1.cores.chunk_ptr_eq(&s2.cores, 2),
        "chunk 2 was rewritten"
    );
    assert_eq!(s1.cores.shared_chunks(&s2.cores), 2);

    // Old epochs stay immutable and self-consistent.
    assert_eq!(s1.core(far), 0);
    assert_eq!(s1.histogram, vec![n - 3, 0, 3]);
    assert_eq!(s2.histogram, vec![n - 5, 2, 3]);

    let (report, _) = svc.shutdown();
    assert_eq!(report.mirror_chunks, 3);
    assert!(
        report.tracked_drains >= 2,
        "planner engine serves tracked drains"
    );
    assert_eq!(report.full_syncs, 0);
    // Two flushes, each dirtying one shared chunk => exactly one COW
    // copy per flush (the flush()-barrier publish clones every chunk
    // into the snapshot, forcing the next write to copy).
    assert_eq!(report.chunks_copied, 2);
    assert_eq!(report.publish.count(), report.batches);
}

#[test]
fn wall_clock_mode_flushes_by_interval() {
    // The one wall-clock test: a real-time service must eventually
    // interval-flush a sub-batch-size buffer without an explicit flush.
    // Generous interval (10 ms) keeps this robust on a loaded 1-CPU
    // host; determinism-sensitive properties live in the scripted tests.
    let cfg = IngestConfig {
        clock: ClockMode::Wall,
        flush_interval_ns: 10_000_000,
        max_batch: 1000,
        ..IngestConfig::default()
    };
    let svc = IngestService::spawn_planned(path_graph(4), 3, cfg).unwrap();
    let snaps = svc.subscribe().unwrap();
    svc.submit(GraphEvent::EdgeInserted(0, 2)).unwrap();
    let snap = snaps
        .recv_timeout(std::time::Duration::from_secs(30))
        .expect("interval flush must fire");
    assert_eq!(snap.ops, 1);
    svc.shutdown();
}

#[test]
fn parallel_writer_matches_serial_writer_bit_identically() {
    use kcore_maint::PlanPolicy;
    let base = barabasi_albert(80, 3, 7);
    let run = |cfg: IngestConfig, policy| {
        let mut cfg = cfg.max_batch(32);
        cfg.planner = PlannerConfig::with_policy(policy);
        let svc = IngestService::spawn_planned(base.clone(), 11, cfg).unwrap();
        for b in churn_stream(&base, 8, 12, 8, 23) {
            for e in churn_events(&b) {
                svc.submit(e).unwrap();
            }
        }
        svc.shutdown()
    };
    // Strategy-matched comparison: both writers run component-split
    // passes, the second with the plan phase on the worker team (cutoff
    // zero forces it even for tiny micro-batch seed pools). Everything
    // the writer reports must be bit-identical.
    let (sr, se) = run(IngestConfig::scripted(), PlanPolicy::ForceSplit);
    let par = Parallelism::exact(4).with_cutoff(0);
    let (pr, mut pe) = run(
        IngestConfig::scripted().parallel(par),
        PlanPolicy::ForceParSplit,
    );
    assert_eq!(pe.parallelism(), Some(par));
    assert_eq!(pr.events, sr.events);
    assert_eq!(pr.batches, sr.batches);
    assert_eq!(pr.update_stats, sr.update_stats);
    assert_eq!(pe.cores(), se.cores());
    pe.validate();
}

#[test]
fn recovery_preserves_writer_parallelism() {
    let dir = tmpdir("par-recovery");
    let d = DurabilityConfig::in_dir(&dir).snapshot_every(2);
    let base = barabasi_albert(40, 3, 5);
    let par = Parallelism::exact(2).with_cutoff(0);
    let svc = IngestService::spawn_planned(
        base.clone(),
        5,
        IngestConfig::scripted()
            .max_batch(8)
            .durable(d.clone())
            .parallel(par),
    )
    .unwrap();
    for b in churn_stream(&base, 4, 8, 4, 9) {
        for e in churn_events(&b) {
            svc.submit(e).unwrap();
        }
        svc.flush().unwrap();
    }
    let (_, mut engine) = svc.shutdown();
    // adopt_recovered replaces the engine wholesale; the wrapper-local
    // parallelism (worker team + planner threads) must survive it.
    let rec = recover(&d, 99, PlannerConfig::default(), 16).unwrap();
    let expected = rec.engine.cores().to_vec();
    assert!(IngestEngine::adopt_recovered(&mut engine, rec));
    assert_eq!(engine.parallelism(), Some(par));
    assert_eq!(engine.planner().threads(), 2);
    assert_eq!(engine.cores(), &expected[..]);
}

#[test]
fn report_merge_sums_counters_and_takes_worst_health() {
    use crate::service::{IngestReport, ServiceHealth};
    let mut a = IngestReport {
        events: 10,
        batches: 3,
        epochs_published: 3,
        entries_shipped: 10,
        snapshots_persisted: 1,
        chunks_copied: 4,
        mirror_chunks: 2,
        tracked_drains: 3,
        events_lost: 1,
        final_health: ServiceHealth::Degraded,
        ..IngestReport::default()
    };
    a.update_stats.changed = 7;
    for v in [10, 30, 20] {
        a.batch_apply.record(v);
    }
    let mut b = IngestReport {
        events: 5,
        batches: 2,
        epochs_published: 2,
        full_syncs: 2,
        engine_panics: 1,
        recoveries: 1,
        final_health: ServiceHealth::Healthy,
        ..IngestReport::default()
    };
    b.update_stats.changed = 3;
    for v in [100, 5] {
        b.batch_apply.record(v);
    }
    let m = IngestReport::merge(&[a, b]);
    assert_eq!(m.events, 15);
    assert_eq!(m.batches, 5);
    assert_eq!(m.epochs_published, 5);
    assert_eq!(m.update_stats.changed, 10);
    assert_eq!(m.chunks_copied, 4);
    assert_eq!(m.tracked_drains, 3);
    assert_eq!(m.full_syncs, 2);
    assert_eq!(m.engine_panics, 1);
    assert_eq!(m.recoveries, 1);
    assert_eq!(m.events_lost, 1);
    assert_eq!(m.final_health, ServiceHealth::Degraded);
    // Latency histograms merge by bucket addition — every sample from
    // both writers is kept (values < 8 land in exact unit buckets, so
    // min is exact here; larger ones are exact at bucket granularity).
    assert_eq!(m.batch_apply.count(), 5);
    assert_eq!(m.batch_apply.min(), 5);
    assert_eq!(m.batch_apply.max(), 100);
    assert!(m.publish.is_empty());
}

#[test]
fn report_merge_latency_histograms_are_percentile_safe() {
    use crate::service::{IngestReport, LATENCY_SAMPLE_CAP};
    // One writer with uniformly low latencies, one with uniformly high:
    // the merged histogram keeps every sample (bucket addition, no
    // subsampling), so the median sits at the population boundary and
    // the p99 comes from the slow writer's tail.
    let n = LATENCY_SAMPLE_CAP as u64;
    let fast = IngestReport::default();
    for v in 0..n {
        fast.batch_apply.record(v);
    }
    let slow = IngestReport::default();
    for v in 0..n {
        slow.batch_apply.record(1_000_000 + v);
    }
    let m = IngestReport::merge(&[fast, slow]);
    assert_eq!(m.batch_apply.count(), 2 * n, "no sample is dropped");
    let p50 = m.batch_apply.p50();
    let p99 = m.batch_apply.p99();
    // Log-bucketed quantiles are exact to ≤12.5% relative bucket width.
    assert!(p50 < 1_000_000, "median left the fast population: {p50}");
    assert!(
        p50 >= n / 2,
        "median fell below the fast population's middle: {p50}"
    );
    assert!(p99 >= 1_000_000, "tail lost the slow population: {p99}");
    // The deprecated shim still reconstructs a rank-ordered vector.
    #[allow(deprecated)]
    let samples = m.batch_apply_ns();
    assert_eq!(samples.len(), LATENCY_SAMPLE_CAP);
    assert!(
        samples.is_sorted(),
        "reconstructed samples are rank-ordered"
    );
}

#[test]
fn published_metrics_track_engine_and_share_chunks() {
    use kcore_maint::CoreMaintainer;
    let base = barabasi_albert(40, 3, 11);
    let svc = IngestService::spawn_planned(
        base.clone(),
        11,
        IngestConfig::scripted().max_batch(4).publish_metrics(true),
    )
    .unwrap();
    let mut events = Vec::new();
    for b in churn_stream(&base, 3, 6, 3, 21) {
        for e in churn_events(&b) {
            events.push(e);
            svc.submit(e).unwrap();
        }
        svc.flush().unwrap();
    }
    let snap = svc.snapshots().load();
    let metrics = snap.metrics.as_ref().expect("metrics published");
    let (_, mut engine) = svc.shutdown();
    let (dp, mcd) = engine.metric_slices();
    assert_eq!(metrics.deg_plus.to_vec(), dp);
    assert_eq!(metrics.mcd.to_vec(), mcd);
    // Snapshot-visible semantics: the engine's own mcd/deg_plus for the
    // final state agree with a from-scratch engine over the same prefix.
    let oracle = apply_events(&base, &events);
    assert_eq!(engine.graph_ref().num_edges(), oracle.num_edges());

    // Without the opt-in, no metrics ride along.
    let svc2 = IngestService::spawn_planned(base, 11, IngestConfig::scripted()).unwrap();
    assert!(svc2.snapshots().load().metrics.is_none());
    svc2.shutdown();
}

#[test]
fn scripted_flush_trace_is_bit_exact_across_runs() {
    use crate::service::ObsConfig;
    // Two identical scripted runs must produce byte-identical span
    // rings: writer-clock timestamps, deterministic item counts, stable
    // stage order. This is the determinism contract of the tracing
    // layer — a wall-clock leak into any span breaks it.
    let run = || {
        let cfg = IngestConfig::scripted()
            .max_batch(2)
            .observe(ObsConfig::default().with_span_capacity(64));
        let svc = IngestService::spawn_planned(path_graph(6), 3, cfg).unwrap();
        let spans = svc.spans().expect("span recorder is on");
        svc.submit(GraphEvent::EdgeInserted(0, 2)).unwrap();
        svc.submit(GraphEvent::EdgeInserted(0, 3)).unwrap(); // flush 1
        svc.tick(500).unwrap();
        svc.submit(GraphEvent::EdgeInserted(1, 4)).unwrap();
        svc.submit(GraphEvent::EdgeRemoved(2, 3)).unwrap(); // flush 2
        svc.flush().unwrap();
        svc.shutdown();
        spans.spans()
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "scripted traces must be bit-exact across runs");

    // Pin the full per-stage breakdown of flush 2 (trace id 2): the
    // batch opened at t=500 and flushed at t=500, so every duration is
    // zero under the scripted clock while item counts stay real.
    let t2: Vec<_> = a.iter().filter(|s| s.trace == 2).collect();
    let stages: Vec<&str> = t2.iter().map(|s| s.stage).collect();
    assert_eq!(
        stages,
        [
            "dequeue",
            "apply",
            "core_drain",
            "journal_ship",
            "mirror_sync",
            "publish"
        ],
        "canonical stage order"
    );
    for s in &t2 {
        assert_eq!(s.start_ns, 500, "writer-clock start of {}", s.stage);
        assert_eq!(s.dur_ns, 0, "scripted durations are zero ({})", s.stage);
    }
    assert_eq!(t2[0].items, 2, "dequeue saw the 2-event batch");
    assert_eq!(t2[1].items, 2, "apply saw the 2-event batch");
    assert_eq!(t2[3].items, 2, "journal_ship moved 2 entries");
    assert_eq!(t2[5].items, 2, "publish advanced ops by 2");

    // Flush 1 ran the same pipeline at t=0.
    let t1: Vec<_> = a.iter().filter(|s| s.trace == 1).collect();
    assert_eq!(t1.len(), 6);
    assert!(t1.iter().all(|s| s.start_ns == 0 && s.dur_ns == 0));
}

#[test]
fn metrics_registry_exposes_flush_pipeline_counters() {
    // Counter/histogram surfaces agree with the report, and both
    // renderings (Prometheus text, JSON) carry the same numbers.
    let svc = IngestService::spawn_planned(path_graph(5), 1, IngestConfig::scripted().max_batch(2))
        .unwrap();
    let metrics = svc.metrics().expect("observability defaults on");
    svc.submit(GraphEvent::EdgeInserted(0, 2)).unwrap();
    svc.submit(GraphEvent::EdgeInserted(0, 3)).unwrap();
    svc.flush().unwrap();
    let snap = metrics.snapshot();
    assert_eq!(snap.counter("ingest_events_total"), Some(2));
    assert_eq!(snap.counter("ingest_batches_total"), Some(1));
    assert_eq!(snap.counter("ingest_epochs_published_total"), Some(1));
    assert_eq!(snap.counter("ingest_events_lost_total"), Some(0));
    let apply = snap.histogram("ingest_batch_apply_ns").unwrap();
    assert_eq!(
        apply.count, 1,
        "report histogram is shared into the registry"
    );
    for stage in [
        "ingest_flush_dequeue_ns",
        "ingest_flush_apply_ns",
        "ingest_flush_core_drain_ns",
        "ingest_flush_journal_ship_ns",
        "ingest_flush_mirror_sync_ns",
        "ingest_flush_publish_ns",
    ] {
        assert_eq!(snap.histogram(stage).unwrap().count, 1, "{stage}");
    }
    // Planner observables rode along from the engine.
    assert!(snap.counter("planner_batched_total").is_some());
    let text = snap.render_text();
    assert!(text.contains("ingest_events_total 2"));
    assert!(text.contains("# TYPE ingest_batch_apply_ns histogram"));
    let json = snap.to_json();
    assert!(json.contains("\"ingest_events_total\":2"));

    let (report, _) = svc.shutdown();
    assert_eq!(report.batches, 1);
    assert_eq!(report.batch_apply.count(), 1);

    // Observability off: no registry, no spans, same report counters.
    let cfg = IngestConfig::scripted()
        .max_batch(2)
        .observe(crate::service::ObsConfig::disabled());
    let svc2 = IngestService::spawn_planned(path_graph(5), 1, cfg).unwrap();
    assert!(svc2.metrics().is_none());
    assert!(svc2.spans().is_none());
    svc2.submit(GraphEvent::EdgeInserted(0, 2)).unwrap();
    svc2.submit(GraphEvent::EdgeInserted(0, 3)).unwrap();
    let (r2, _) = svc2.shutdown();
    assert_eq!(r2.batches, 1);
    assert_eq!(r2.batch_apply.count(), 1);
}
