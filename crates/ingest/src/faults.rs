//! Deterministic fault injection for the durability layer.
//!
//! Every byte the ingest service persists flows through the [`JournalIo`]
//! trait — journal appends, snapshot writes, fsyncs, renames, directory
//! syncs, reads and truncations. Production uses [`RealIo`] (plain
//! `std::fs`); tests swap in [`FaultyIo`], which executes a scripted
//! [`FaultPlan`] against per-class operation counters: *the k-th journal
//! append fails short*, *the 2nd rename crashes the process*, *the 0th
//! snapshot read comes back with a flipped bit*. The discipline is the
//! same as [`crate::ClockMode::Scripted`]: no randomness, no timing —
//! a fault fires at an exact operation count, so every failure
//! interleaving is a reproducible test case on any host.
//!
//! [`FaultKind::Crash`] models `kill -9` at a failpoint: the scripted
//! operation is *not* performed and every later operation on the handle
//! fails, freezing the on-disk state exactly as a power cut would. The
//! kill-at-every-failpoint sweep in `tests/fault_injection.rs` first
//! profiles a clean run ([`StorageHandle::op_counts`]), then replays the
//! workload once per (class, index) pair and asserts recovery restores
//! the oracle state on the reported durable prefix.
//!
//! [`FlakyEngine`] is the same idea one layer up: a [`PlannedCore`]
//! wrapper that panics at scripted batch indices — half the batch
//! applied, half not — to exercise the supervised writer's
//! `catch_unwind` + `recover()` path.

use kcore_graph::{DynamicGraph, EdgeListError, VertexId};
use kcore_maint::{CoreMaintainer, PlannedCore, UpdateStats};
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::Path;
use std::sync::{Arc, Mutex};

/// The storage operation classes a [`FaultPlan`] can target. Each class
/// has its own 0-based operation counter inside [`FaultyIo`]; counters
/// include operations that fail naturally (e.g. a `Read` of a missing
/// file), so indices are a pure function of the call sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpClass {
    /// Appending bytes to the journal (header creation included).
    JournalAppend,
    /// `fsync` of journal data after an append.
    JournalSync,
    /// Whole-file writes: snapshot temp files, journal rewrites/resets.
    FileWrite,
    /// `fsync` of a freshly written file before its rename.
    FileSync,
    /// Atomic renames (snapshot rotation, temp-file publication).
    Rename,
    /// Parent-directory `fsync` after a rename.
    DirSync,
    /// Whole-file reads (journal and snapshot loads).
    Read,
    /// Truncations (torn-tail and failed-append repair).
    Truncate,
}

/// Number of [`OpClass`] variants (per-class counter array size).
const OP_CLASSES: usize = 8;

impl OpClass {
    fn idx(self) -> usize {
        match self {
            OpClass::JournalAppend => 0,
            OpClass::JournalSync => 1,
            OpClass::FileWrite => 2,
            OpClass::FileSync => 3,
            OpClass::Rename => 4,
            OpClass::DirSync => 5,
            OpClass::Read => 6,
            OpClass::Truncate => 7,
        }
    }

    /// All classes, in counter order.
    pub const ALL: [OpClass; OP_CLASSES] = [
        OpClass::JournalAppend,
        OpClass::JournalSync,
        OpClass::FileWrite,
        OpClass::FileSync,
        OpClass::Rename,
        OpClass::DirSync,
        OpClass::Read,
        OpClass::Truncate,
    ];
}

/// What a scripted fault does when its operation count comes up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// A data write persists only its first `keep` bytes, then errors —
    /// the torn-write case. On non-write classes this degrades to
    /// [`FaultKind::IoError`].
    ShortWrite {
        /// Bytes that reach the file before the failure.
        keep: usize,
    },
    /// The operation fails without side effects. On a sync class this is
    /// the "failed fsync" case: the data write succeeded, durability
    /// didn't.
    IoError,
    /// Silent corruption: a data write lands with one byte flipped, a
    /// read returns one flipped byte — and reports **success**. The case
    /// per-record CRCs exist for. Non-data classes degrade to
    /// [`FaultKind::IoError`].
    BitFlip {
        /// Byte position, taken modulo the payload length.
        offset: usize,
        /// XOR mask applied to the byte (`0` is replaced by `0x01`).
        mask: u8,
    },
    /// Process death at the failpoint: the operation is not performed
    /// and every subsequent operation fails, freezing the on-disk state.
    Crash,
}

/// One injected (or about to be injected) fault: class, operation index,
/// kind.
pub type InjectedFault = (OpClass, u64, FaultKind);

/// A deterministic fault script: a set of `(class, nth-op, kind)`
/// triples. Built with the builder methods and handed to
/// [`StorageHandle::faulty`] (or [`crate::DurabilityConfig::with_faults`]).
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    scripted: Vec<InjectedFault>,
}

impl FaultPlan {
    /// An empty plan (no faults — useful to profile operation counts).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Scripts `kind` to fire on the `nth` (0-based) operation of
    /// `class`.
    pub fn fault(mut self, class: OpClass, nth: u64, kind: FaultKind) -> Self {
        self.scripted.push((class, nth, kind));
        self
    }

    /// Scripts a [`FaultKind::Crash`] at the `nth` operation of `class`.
    pub fn crash(self, class: OpClass, nth: u64) -> Self {
        self.fault(class, nth, FaultKind::Crash)
    }

    fn take(&mut self, class: OpClass, nth: u64) -> Option<FaultKind> {
        let at = self
            .scripted
            .iter()
            .position(|&(c, n, _)| c == class && n == nth)?;
        Some(self.scripted.swap_remove(at).2)
    }
}

/// The storage seam: every persistent-state operation the durability
/// layer performs. `&mut self` because implementations keep counters;
/// handles are shared through [`StorageHandle`]'s mutex.
pub trait JournalIo: Send {
    /// Appends `bytes` to `path`, creating the file if absent.
    fn append(&mut self, path: &Path, bytes: &[u8]) -> io::Result<()>;
    /// `fsync`s journal data previously appended to `path`.
    fn sync_data(&mut self, path: &Path) -> io::Result<()>;
    /// Creates/overwrites `path` with `bytes`.
    fn write_file(&mut self, path: &Path, bytes: &[u8]) -> io::Result<()>;
    /// `fsync`s `path` (written via [`JournalIo::write_file`]).
    fn sync_file(&mut self, path: &Path) -> io::Result<()>;
    /// Atomically renames `from` to `to`.
    fn rename(&mut self, from: &Path, to: &Path) -> io::Result<()>;
    /// `fsync`s a directory, making prior renames in it power-loss
    /// durable.
    fn sync_dir(&mut self, dir: &Path) -> io::Result<()>;
    /// Reads `path` in full.
    fn read(&mut self, path: &Path) -> io::Result<Vec<u8>>;
    /// Truncates `path` to `len` bytes.
    fn truncate(&mut self, path: &Path, len: u64) -> io::Result<()>;

    /// Faults this handle has injected so far (empty for real storage).
    fn fired(&self) -> Vec<InjectedFault> {
        Vec::new()
    }
    /// Whether a scripted [`FaultKind::Crash`] has fired.
    fn crashed(&self) -> bool {
        false
    }
    /// Per-class operation counts (empty for real storage) — the
    /// profile a kill-sweep enumerates failpoints from.
    fn op_counts(&self) -> Vec<(OpClass, u64)> {
        Vec::new()
    }
}

/// Plain `std::fs` storage. Opens per operation: the durability layer
/// performs a handful of operations per flush, so handle caching would
/// buy microseconds and cost staleness bugs across renames/truncates.
#[derive(Debug, Default)]
pub struct RealIo;

fn dir_or_cwd(dir: &Path) -> &Path {
    if dir.as_os_str().is_empty() {
        Path::new(".")
    } else {
        dir
    }
}

impl JournalIo for RealIo {
    fn append(&mut self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let mut f = OpenOptions::new().append(true).create(true).open(path)?;
        f.write_all(bytes)
    }

    fn sync_data(&mut self, path: &Path) -> io::Result<()> {
        File::open(path)?.sync_data()
    }

    fn write_file(&mut self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        std::fs::write(path, bytes)
    }

    fn sync_file(&mut self, path: &Path) -> io::Result<()> {
        File::open(path)?.sync_all()
    }

    fn rename(&mut self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }

    fn sync_dir(&mut self, dir: &Path) -> io::Result<()> {
        File::open(dir_or_cwd(dir))?.sync_all()
    }

    fn read(&mut self, path: &Path) -> io::Result<Vec<u8>> {
        std::fs::read(path)
    }

    fn truncate(&mut self, path: &Path, len: u64) -> io::Result<()> {
        OpenOptions::new().write(true).open(path)?.set_len(len)
    }
}

/// [`RealIo`] under a [`FaultPlan`]: performs every operation for real
/// unless the per-class counter matches a scripted fault.
pub struct FaultyIo {
    inner: RealIo,
    plan: FaultPlan,
    counts: [u64; OP_CLASSES],
    crashed: bool,
    fired: Vec<InjectedFault>,
}

impl FaultyIo {
    /// Wraps real storage under `plan`.
    pub fn new(plan: FaultPlan) -> Self {
        FaultyIo {
            inner: RealIo,
            plan,
            counts: [0; OP_CLASSES],
            crashed: false,
            fired: Vec::new(),
        }
    }

    /// Advances the class counter and returns the fault scheduled for
    /// this operation, if any. A prior crash short-circuits everything.
    fn arm(&mut self, class: OpClass) -> Result<Option<FaultKind>, io::Error> {
        if self.crashed {
            return Err(io::Error::other("storage crashed (scripted)"));
        }
        let nth = self.counts[class.idx()];
        self.counts[class.idx()] += 1;
        match self.plan.take(class, nth) {
            Some(FaultKind::Crash) => {
                self.crashed = true;
                self.fired.push((class, nth, FaultKind::Crash));
                Err(io::Error::other("crash at failpoint (scripted)"))
            }
            Some(kind) => {
                self.fired.push((class, nth, kind));
                Ok(Some(kind))
            }
            None => Ok(None),
        }
    }

    /// A data write under the armed fault: short writes persist a
    /// prefix, bit flips persist silently corrupted bytes, other kinds
    /// degrade to a clean error.
    fn faulted_write(
        &mut self,
        fault: FaultKind,
        bytes: &[u8],
        mut op: impl FnMut(&mut RealIo, &[u8]) -> io::Result<()>,
    ) -> io::Result<()> {
        match fault {
            FaultKind::ShortWrite { keep } => {
                op(&mut self.inner, &bytes[..keep.min(bytes.len())])?;
                Err(io::Error::other("short write (scripted)"))
            }
            FaultKind::BitFlip { offset, mask } => {
                let mut corrupted = bytes.to_vec();
                if !corrupted.is_empty() {
                    let at = offset % corrupted.len();
                    corrupted[at] ^= if mask == 0 { 1 } else { mask };
                }
                op(&mut self.inner, &corrupted)
            }
            _ => Err(io::Error::other("io error (scripted)")),
        }
    }
}

impl JournalIo for FaultyIo {
    fn append(&mut self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        match self.arm(OpClass::JournalAppend)? {
            None => self.inner.append(path, bytes),
            Some(fault) => self.faulted_write(fault, bytes, |io, b| io.append(path, b)),
        }
    }

    fn sync_data(&mut self, path: &Path) -> io::Result<()> {
        match self.arm(OpClass::JournalSync)? {
            None => self.inner.sync_data(path),
            Some(_) => Err(io::Error::other("fsync failed (scripted)")),
        }
    }

    fn write_file(&mut self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        match self.arm(OpClass::FileWrite)? {
            None => self.inner.write_file(path, bytes),
            Some(fault) => self.faulted_write(fault, bytes, |io, b| io.write_file(path, b)),
        }
    }

    fn sync_file(&mut self, path: &Path) -> io::Result<()> {
        match self.arm(OpClass::FileSync)? {
            None => self.inner.sync_file(path),
            Some(_) => Err(io::Error::other("fsync failed (scripted)")),
        }
    }

    fn rename(&mut self, from: &Path, to: &Path) -> io::Result<()> {
        match self.arm(OpClass::Rename)? {
            None => self.inner.rename(from, to),
            Some(_) => Err(io::Error::other("rename failed (scripted)")),
        }
    }

    fn sync_dir(&mut self, dir: &Path) -> io::Result<()> {
        match self.arm(OpClass::DirSync)? {
            None => self.inner.sync_dir(dir),
            Some(_) => Err(io::Error::other("dir fsync failed (scripted)")),
        }
    }

    fn read(&mut self, path: &Path) -> io::Result<Vec<u8>> {
        match self.arm(OpClass::Read)? {
            None => self.inner.read(path),
            Some(FaultKind::BitFlip { offset, mask }) => {
                let mut bytes = self.inner.read(path)?;
                if !bytes.is_empty() {
                    let at = offset % bytes.len();
                    bytes[at] ^= if mask == 0 { 1 } else { mask };
                }
                Ok(bytes)
            }
            Some(_) => Err(io::Error::other("read failed (scripted)")),
        }
    }

    fn truncate(&mut self, path: &Path, len: u64) -> io::Result<()> {
        match self.arm(OpClass::Truncate)? {
            None => self.inner.truncate(path, len),
            Some(_) => Err(io::Error::other("truncate failed (scripted)")),
        }
    }

    fn fired(&self) -> Vec<InjectedFault> {
        self.fired.clone()
    }

    fn crashed(&self) -> bool {
        self.crashed
    }

    fn op_counts(&self) -> Vec<(OpClass, u64)> {
        OpClass::ALL
            .iter()
            .map(|&c| (c, self.counts[c.idx()]))
            .collect()
    }
}

/// Cloneable, thread-safe handle to one [`JournalIo`] implementation.
/// The writer thread, the spawn-time sink open, and `recover()` all
/// share the same handle, so a scripted plan sees one global operation
/// sequence.
#[derive(Clone)]
pub struct StorageHandle {
    io: Arc<Mutex<Box<dyn JournalIo>>>,
    faulty: bool,
}

impl StorageHandle {
    /// Plain `std::fs` storage — the production default.
    pub fn real() -> Self {
        StorageHandle {
            io: Arc::new(Mutex::new(Box::new(RealIo))),
            faulty: false,
        }
    }

    /// Real storage under a scripted [`FaultPlan`].
    pub fn faulty(plan: FaultPlan) -> Self {
        StorageHandle {
            io: Arc::new(Mutex::new(Box::new(FaultyIo::new(plan)))),
            faulty: true,
        }
    }

    /// Wraps a custom [`JournalIo`] implementation.
    pub fn custom(io: Box<dyn JournalIo>) -> Self {
        StorageHandle {
            io: Arc::new(Mutex::new(io)),
            faulty: true,
        }
    }

    /// Runs `f` under the handle's lock.
    pub fn with<R>(&self, f: impl FnOnce(&mut dyn JournalIo) -> R) -> R {
        let mut guard = self.io.lock().expect("storage handle poisoned");
        f(guard.as_mut())
    }

    /// Faults injected so far (empty for real storage).
    pub fn fired_faults(&self) -> Vec<InjectedFault> {
        self.with(|io| io.fired())
    }

    /// Whether a scripted crash has fired.
    pub fn crashed(&self) -> bool {
        self.with(|io| io.crashed())
    }

    /// Per-class operation counts (empty for real storage).
    pub fn op_counts(&self) -> Vec<(OpClass, u64)> {
        self.with(|io| io.op_counts())
    }
}

impl Default for StorageHandle {
    fn default() -> Self {
        StorageHandle::real()
    }
}

impl fmt::Debug for StorageHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("StorageHandle")
            .field("faulty", &self.faulty)
            .finish()
    }
}

/// A [`PlannedCore`] that panics at scripted batch indices — the
/// engine-side counterpart of [`FaultyIo`], for exercising the
/// supervised writer. The panic fires **mid-batch**: the first half of
/// the edges is applied before unwinding, so the poisoned engine
/// genuinely diverges from the journal and recovery has real work to do.
///
/// The batch counter and panic script live behind `Arc`s shared with
/// clones of [`FlakyEngine::probe`], so a test can watch panics fire
/// while the service owns the engine.
pub struct FlakyEngine {
    inner: PlannedCore,
    batches: Arc<Mutex<u64>>,
    panic_on: Arc<Mutex<Vec<u64>>>,
}

/// Observer for a [`FlakyEngine`] owned by a running service.
#[derive(Clone)]
pub struct FlakyProbe {
    batches: Arc<Mutex<u64>>,
    panic_on: Arc<Mutex<Vec<u64>>>,
}

impl FlakyProbe {
    /// Batch entry points invoked so far (across rebuilds).
    pub fn batches(&self) -> u64 {
        *self.batches.lock().expect("flaky probe poisoned")
    }

    /// Scripted panics not yet fired.
    pub fn panics_left(&self) -> usize {
        self.panic_on.lock().expect("flaky probe poisoned").len()
    }
}

impl FlakyEngine {
    /// Wraps `inner`, panicking on the given (0-based, global) batch
    /// indices.
    pub fn new(inner: PlannedCore, panic_on_batches: &[u64]) -> Self {
        FlakyEngine {
            inner,
            batches: Arc::new(Mutex::new(0)),
            panic_on: Arc::new(Mutex::new(panic_on_batches.to_vec())),
        }
    }

    /// A cloneable observer sharing this engine's counters.
    pub fn probe(&self) -> FlakyProbe {
        FlakyProbe {
            batches: self.batches.clone(),
            panic_on: self.panic_on.clone(),
        }
    }

    /// The wrapped engine.
    pub fn inner(&self) -> &PlannedCore {
        &self.inner
    }

    /// Replaces the wrapped engine (the supervisor's rebuild hook),
    /// keeping the batch counter and any remaining scripted panics.
    pub(crate) fn replace_inner(&mut self, inner: PlannedCore) {
        self.inner = inner;
    }

    /// Persists the wrapped engine's index, bypassing the scripted
    /// panic counter (checkpointing is not a batch entry point).
    pub(crate) fn persist_inner(&mut self, out: &mut dyn std::io::Write) -> std::io::Result<()> {
        self.inner.order().save(out)
    }

    /// Returns whether this batch index is scripted to panic (and
    /// consumes the script entry).
    fn scripted_panic(&mut self) -> bool {
        let idx = {
            let mut b = self.batches.lock().expect("flaky engine poisoned");
            let idx = *b;
            *b += 1;
            idx
        };
        let mut panics = self.panic_on.lock().expect("flaky engine poisoned");
        if let Some(at) = panics.iter().position(|&p| p == idx) {
            panics.swap_remove(at);
            true
        } else {
            false
        }
    }
}

impl CoreMaintainer for FlakyEngine {
    fn insert(&mut self, u: VertexId, v: VertexId) -> Result<UpdateStats, EdgeListError> {
        self.inner.insert(u, v)
    }

    fn remove(&mut self, u: VertexId, v: VertexId) -> Result<UpdateStats, EdgeListError> {
        self.inner.remove(u, v)
    }

    fn insert_batch(&mut self, edges: &[(VertexId, VertexId)]) -> UpdateStats {
        if self.scripted_panic() {
            let half = edges.len() / 2;
            self.inner.insert_batch(&edges[..half]);
            panic!("scripted engine fault: insert batch");
        }
        self.inner.insert_batch(edges)
    }

    fn remove_batch(&mut self, edges: &[(VertexId, VertexId)]) -> UpdateStats {
        if self.scripted_panic() {
            let half = edges.len() / 2;
            self.inner.remove_batch(&edges[..half]);
            panic!("scripted engine fault: remove batch");
        }
        self.inner.remove_batch(edges)
    }

    fn core_of(&self, v: VertexId) -> u32 {
        self.inner.core_of(v)
    }

    fn core_slice(&self) -> &[u32] {
        self.inner.core_slice()
    }

    fn graph_ref(&self) -> &DynamicGraph {
        self.inner.graph_ref()
    }

    fn name(&self) -> String {
        "Flaky(Planned)".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmpfile(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("kcore_ingest_faults");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn fault_plan_fires_at_exact_op_counts() {
        let p = tmpfile("exact.bin");
        std::fs::remove_file(&p).ok();
        let storage = StorageHandle::faulty(
            FaultPlan::new()
                .fault(OpClass::JournalAppend, 1, FaultKind::ShortWrite { keep: 2 })
                .fault(OpClass::JournalAppend, 3, FaultKind::IoError),
        );
        // Op 0: clean. Op 1: short (2 of 4 bytes land). Op 2: clean.
        // Op 3: refused without side effects.
        storage.with(|io| io.append(&p, b"aaaa")).unwrap();
        assert!(storage.with(|io| io.append(&p, b"bbbb")).is_err());
        storage.with(|io| io.append(&p, b"cccc")).unwrap();
        assert!(storage.with(|io| io.append(&p, b"dddd")).is_err());
        assert_eq!(std::fs::read(&p).unwrap(), b"aaaabbcccc");
        assert_eq!(storage.fired_faults().len(), 2);
        assert!(!storage.crashed());
        let counts = storage.op_counts();
        assert!(counts.contains(&(OpClass::JournalAppend, 4)));
    }

    #[test]
    fn fault_crash_freezes_all_later_ops() {
        let p = tmpfile("crash.bin");
        std::fs::remove_file(&p).ok();
        let storage = StorageHandle::faulty(FaultPlan::new().crash(OpClass::JournalAppend, 1));
        storage.with(|io| io.append(&p, b"live")).unwrap();
        assert!(storage.with(|io| io.append(&p, b"dead")).is_err());
        assert!(storage.crashed());
        // Everything after the crash fails, across classes.
        assert!(storage.with(|io| io.read(&p)).is_err());
        assert!(storage.with(|io| io.sync_dir(p.parent().unwrap())).is_err());
        assert_eq!(std::fs::read(&p).unwrap(), b"live");
    }

    #[test]
    fn fault_bit_flip_is_silent() {
        let p = tmpfile("flip.bin");
        std::fs::remove_file(&p).ok();
        let storage = StorageHandle::faulty(FaultPlan::new().fault(
            OpClass::FileWrite,
            0,
            FaultKind::BitFlip {
                offset: 1,
                mask: 0xFF,
            },
        ));
        // The write *reports success* — only the bytes lie.
        storage
            .with(|io| io.write_file(&p, b"\x00\x00\x00"))
            .unwrap();
        assert_eq!(std::fs::read(&p).unwrap(), b"\x00\xFF\x00");
        // Reads can lie the same way.
        let storage = StorageHandle::faulty(FaultPlan::new().fault(
            OpClass::Read,
            0,
            FaultKind::BitFlip {
                offset: 0,
                mask: 0x01,
            },
        ));
        assert_eq!(storage.with(|io| io.read(&p)).unwrap(), b"\x01\xFF\x00");
    }

    #[test]
    fn fault_flaky_engine_panics_mid_batch_then_resumes() {
        let g = DynamicGraph::with_vertices(6);
        let mut e = FlakyEngine::new(PlannedCore::with_config(g, 1, Default::default()), &[1]);
        let probe = e.probe();
        e.insert_batch(&[(0, 1), (1, 2)]);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            e.insert_batch(&[(2, 3), (3, 4)]);
        }));
        assert!(caught.is_err());
        // Half the batch landed before the unwind: (2,3) yes, (3,4) no.
        assert_eq!(e.graph_ref().num_edges(), 3);
        assert_eq!(probe.batches(), 2);
        assert_eq!(probe.panics_left(), 0);
        // The next batch is clean again.
        e.insert_batch(&[(4, 5)]);
        assert_eq!(e.graph_ref().num_edges(), 4);
    }
}
