//! The ingest service: a single-writer, multi-reader streaming loop.
//!
//! One dedicated **writer thread** owns the maintenance engine (wrapped
//! in a [`Journaled`] recorder) and is fed [`GraphEvent`]s through a
//! **bounded** MPSC channel — the bound is the backpressure contract:
//! [`IngestService::try_submit`] reports [`IngestError::QueueFull`]
//! instead of buffering unboundedly, [`IngestService::submit`] blocks
//! the producer until the writer drains. A **micro-batcher** buffers
//! events and flushes on whichever comes first: the batch-size cap or a
//! clock tick past the flush interval. Each flush applies the batch
//! through the engine's planner-driven batch path (via
//! [`replay_batched`], so mixed insert/remove runs group correctly),
//! ships the journal tail to the durability sink, and publishes a fresh
//! epoch-versioned [`CoreSnapshot`] — readers never observe a
//! half-applied batch and never block the writer.
//!
//! ## Clocks and determinism
//!
//! Production uses [`ClockMode::Wall`]. Tests use
//! [`ClockMode::Scripted`], where time advances **only** through
//! [`IngestService::tick`] messages travelling the same channel as
//! events: the writer's behaviour becomes a pure function of the message
//! sequence, so flush boundaries, epochs, and journal contents are
//! bit-reproducible on any host — including this repo's 1-CPU CI
//! container — with no sleeps and no wall-clock reads. (This is the
//! same testing posture as `Planner::with_clock`, pushed one level up:
//! instead of injecting a closure the writer polls — which would race
//! with event arrival — the scripted clock serialises time itself into
//! the event stream.)

use crate::chunked::CoreMirror;
use crate::durability::{DurabilityConfig, JournalSink, Recovered};
use crate::snapshot::{CoreSnapshot, SnapshotHandle, SnapshotReceiver};
use kcore_graph::{DynamicGraph, VertexId};
use kcore_maint::journal::{replay_batched, GraphEvent, Journaled};
use kcore_maint::{
    CoreMaintainer, PlannedCore, PlannerConfig, RecomputeCore, TreapOrderCore, UpdateStats,
};
use std::io;
use std::sync::mpsc::{self, Receiver, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// An engine the ingest writer can drive: any [`CoreMaintainer`] that
/// can cross the thread boundary, with optional core-change-tracking
/// and index-persistence hooks.
pub trait IngestEngine: CoreMaintainer + Send + 'static {
    /// Asks the engine to start recording which vertices change core
    /// number, to be drained via [`IngestEngine::drain_core_changes`].
    /// Returns `false` (the default) for engines without tracking —
    /// the writer then syncs its snapshot mirror by a chunk-granular
    /// compare instead of a change list.
    fn enable_core_change_tracking(&mut self) -> bool {
        false
    }

    /// Appends the vertices whose core changed since the last drain to
    /// `out` (duplicates allowed; the caller reads final values) and
    /// clears the record. `false` means "no tracked set — do a full
    /// sync" (tracking off, or the log was overwhelmed).
    fn drain_core_changes(&mut self, _out: &mut Vec<VertexId>) -> bool {
        false
    }

    /// Writes the engine's persistent index form, if it has one. The
    /// default reports unsupported — durability then requires an engine
    /// that overrides this (the planner-driven order engine does).
    fn persist_index(&mut self, _out: &mut dyn io::Write) -> io::Result<()> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "engine has no persistent index form",
        ))
    }
}

impl IngestEngine for PlannedCore {
    fn enable_core_change_tracking(&mut self) -> bool {
        PlannedCore::enable_core_change_tracking(self);
        true
    }

    fn drain_core_changes(&mut self, out: &mut Vec<VertexId>) -> bool {
        PlannedCore::drain_core_changes(self, out)
    }

    fn persist_index(&mut self, out: &mut dyn io::Write) -> io::Result<()> {
        // `order()` refreshes the deferred k-order first: the persisted
        // form always round-trips through `OrderCore::load` validation.
        self.order().save(out)
    }
}

impl IngestEngine for TreapOrderCore {
    fn enable_core_change_tracking(&mut self) -> bool {
        TreapOrderCore::enable_core_change_tracking(self);
        true
    }

    fn drain_core_changes(&mut self, out: &mut Vec<VertexId>) -> bool {
        TreapOrderCore::drain_core_changes(self, out)
    }

    fn persist_index(&mut self, out: &mut dyn io::Write) -> io::Result<()> {
        self.save(out)
    }
}

/// The oracle instantiation (decompose-per-batch); no change tracking —
/// the writer exercises the chunk-compare fallback — and durability is
/// unsupported.
impl IngestEngine for RecomputeCore {}

/// Submission failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IngestError {
    /// The bounded queue is at capacity (backpressure): retry, shed, or
    /// switch to the blocking [`IngestService::submit`].
    QueueFull,
    /// The writer thread is gone (shut down, aborted, or panicked).
    Closed,
}

impl std::fmt::Display for IngestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IngestError::QueueFull => write!(f, "ingest queue full"),
            IngestError::Closed => write!(f, "ingest service closed"),
        }
    }
}

impl std::error::Error for IngestError {}

/// Which clock drives interval flushes (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ClockMode {
    /// Real time: the writer parks in `recv_timeout` until the flush
    /// deadline of the oldest buffered event.
    #[default]
    Wall,
    /// Time advances only via [`IngestService::tick`] messages;
    /// deterministic on any host.
    Scripted,
}

/// Service tunables.
#[derive(Debug, Clone)]
pub struct IngestConfig {
    /// Bounded-queue capacity — the backpressure depth.
    pub queue_capacity: usize,
    /// Flush when this many events are buffered.
    pub max_batch: usize,
    /// Flush when the oldest buffered event is this old (`u64::MAX`
    /// disables interval flushes: size, explicit flush, shutdown only).
    pub flush_interval_ns: u64,
    /// Publish a snapshot every this many flushes (`1` = every batch;
    /// explicit [`IngestService::flush`] always publishes).
    pub publish_every_batches: usize,
    /// Interval-flush time source.
    pub clock: ClockMode,
    /// Journal/snapshot persistence; `None` runs in-memory only.
    pub durability: Option<DurabilityConfig>,
    /// Planner configuration for engines spawned by the convenience
    /// constructors ([`IngestService::spawn_planned`] and the recovery
    /// path).
    pub planner: PlannerConfig,
}

impl Default for IngestConfig {
    fn default() -> Self {
        IngestConfig {
            queue_capacity: 1024,
            max_batch: 256,
            flush_interval_ns: 5_000_000, // 5 ms
            publish_every_batches: 1,
            clock: ClockMode::Wall,
            durability: None,
            planner: PlannerConfig::default(),
        }
    }
}

impl IngestConfig {
    /// Scripted-clock config with interval flushes disabled by default —
    /// the deterministic test shape (size/tick/flush-driven only).
    pub fn scripted() -> Self {
        IngestConfig {
            clock: ClockMode::Scripted,
            flush_interval_ns: u64::MAX,
            ..IngestConfig::default()
        }
    }

    /// Sets the micro-batch size cap.
    pub fn max_batch(mut self, max_batch: usize) -> Self {
        self.max_batch = max_batch.max(1);
        self
    }

    /// Sets the bounded-queue capacity.
    pub fn queue_capacity(mut self, cap: usize) -> Self {
        self.queue_capacity = cap.max(1);
        self
    }

    /// Sets the flush interval in nanoseconds.
    pub fn flush_interval_ns(mut self, ns: u64) -> Self {
        self.flush_interval_ns = ns;
        self
    }

    /// Attaches durability.
    pub fn durable(mut self, d: DurabilityConfig) -> Self {
        self.durability = Some(d);
        self
    }
}

/// What the writer hands back at shutdown.
#[derive(Debug, Default, Clone)]
pub struct IngestReport {
    /// Events the writer received.
    pub events: u64,
    /// Micro-batches flushed.
    pub batches: u64,
    /// Aggregate engine stats over every flush.
    pub update_stats: UpdateStats,
    /// Snapshots published.
    pub epochs_published: u64,
    /// Journal entries shipped to the sink.
    pub entries_shipped: u64,
    /// Index snapshots persisted.
    pub snapshots_persisted: u64,
    /// Per-flush apply+ship duration, writer-clock ns (the bench's p50 /
    /// p99 batch-latency source; scripted clocks make these synthetic).
    /// Bounded: a ring of the most recent [`LATENCY_SAMPLE_CAP`] flushes
    /// — a long-lived writer must not grow a metric vector forever.
    pub batch_apply_ns: Vec<u64>,
    /// Per-flush snapshot-maintenance cost (mirror sync + publication),
    /// **wall**-clock ns even under a scripted clock — metrics do not
    /// affect determinism. Same ring policy as `batch_apply_ns`. This is
    /// the publish-cost gate's sample source: O(changed), not O(n).
    pub publish_ns: Vec<u64>,
    /// Chunks copy-on-written into the snapshot mirror, totalled over
    /// every flush (the "publish cost is proportional to the diff"
    /// witness; compare against `mirror_chunks` × flushes).
    pub chunks_copied: u64,
    /// Chunks backing the mirror at shutdown.
    pub mirror_chunks: u64,
    /// Mirror syncs served from the engine's tracked change set
    /// (`O(changed)`).
    pub tracked_drains: u64,
    /// Mirror syncs that fell back to the chunk-compare path (`O(n)`
    /// compare, still `O(changed)` copy).
    pub full_syncs: u64,
}

/// Retained per-flush latency samples (ring of the most recent; sample
/// order within the vector is immaterial for percentiles).
pub const LATENCY_SAMPLE_CAP: usize = 4096;

enum Msg {
    Event(GraphEvent),
    Tick(u64),
    Flush(mpsc::Sender<Arc<CoreSnapshot>>),
    Subscribe(mpsc::Sender<Arc<CoreSnapshot>>),
    Pause(mpsc::Sender<()>, mpsc::Receiver<()>),
    Shutdown { graceful: bool },
}

/// Handle to a running ingest service. Cheap operations
/// ([`IngestService::try_submit`], [`IngestService::snapshots`]) are
/// `&self`; lifecycle operations consume the handle. Dropping the handle
/// shuts the writer down gracefully (flushing pending events and taking
/// a final persisted snapshot when durability is on).
pub struct IngestService<M: IngestEngine = PlannedCore> {
    tx: SyncSender<Msg>,
    snapshots: SnapshotHandle,
    writer: Option<JoinHandle<(IngestReport, Journaled<M>)>>,
}

impl IngestService<PlannedCore> {
    /// Spawns the default planner-driven service over `graph`.
    pub fn spawn_planned(graph: DynamicGraph, seed: u64, cfg: IngestConfig) -> io::Result<Self> {
        let engine = PlannedCore::with_config(graph, seed, cfg.planner.clone());
        Self::spawn_with_engine(engine, 0, cfg)
    }

    /// Resumes a recovered service: the engine continues from the
    /// restored state and journaling continues at the recovered seq, so
    /// the (re-opened, append-only) journal stays gap-free.
    pub fn spawn_recovered(rec: Recovered, cfg: IngestConfig) -> io::Result<Self> {
        Self::spawn_with_engine(rec.engine, rec.next_seq, cfg)
    }
}

impl<M: IngestEngine> IngestService<M> {
    /// Spawns the writer thread over an arbitrary engine. `start_seq` is
    /// the journal sequence to resume at (0 for a fresh stream).
    pub fn spawn_with_engine(mut engine: M, start_seq: u64, cfg: IngestConfig) -> io::Result<Self> {
        // Open the sink on the caller's thread so setup errors surface
        // synchronously instead of poisoning the writer.
        let sink = match &cfg.durability {
            Some(d) => {
                let sink =
                    JournalSink::open(&d.journal_path, engine.graph_ref().num_vertices(), d.fsync)?;
                // Seqs appended by this service continue at `start_seq`;
                // the file must hold exactly that many records or the
                // gap-free invariant breaks. The dangerous misuse this
                // rejects: a *fresh* spawn (start_seq 0) over a
                // directory that already holds a journal — appending
                // restarted seqs would make every later recovery read
                // the old run's prefix and silently truncate the new
                // run's records as a "torn tail". Resume with
                // `recover()` + `spawn_recovered`, or point durability
                // at a fresh directory.
                if sink.existing() != start_seq {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!(
                            "journal already holds {} events but the service would resume at seq \
                             {start_seq}; recover() + spawn_recovered to continue this journal, \
                             or use a fresh durability directory",
                            sink.existing()
                        ),
                    ));
                }
                Some(sink)
            }
            None => None,
        };
        if let Some(d) = &cfg.durability {
            // Checkpoint zero: the journal only records *events*, so a
            // service spawned over a non-empty base graph must persist
            // the base state once — otherwise a crash before the first
            // periodic snapshot would lose the base edges irrecoverably.
            // Also the point where a non-persistable engine fails fast.
            if !d.snapshot_path.exists() {
                let mut payload = Vec::new();
                engine.persist_index(&mut payload)?;
                write_snapshot_payload(&d.snapshot_path, start_seq, &payload)?;
            }
        }
        // Core-change tracking feeds the copy-on-write snapshot mirror
        // in O(changed); engines without it (the recompute oracle) fall
        // back to a chunk-compare sync per flush.
        let tracking = engine.enable_core_change_tracking();
        let mirror = CoreMirror::from_slice(engine.core_slice());
        let journaled = Journaled::with_start_seq(engine, start_seq);
        let (tx, rx) = mpsc::sync_channel(cfg.queue_capacity.max(1));
        let writer = Writer {
            engine: journaled,
            cfg,
            sink,
            pending: Vec::new(),
            batch_open_ns: None,
            now_ns: 0,
            origin: Instant::now(),
            epoch: 0,
            ops: start_seq,
            published_ops: start_seq,
            ship_cursor: start_seq,
            batches_since_persist: 0,
            subscribers: Vec::new(),
            mirror,
            tracking,
            change_buf: Vec::new(),
            report: IngestReport::default(),
        };
        let snapshots = SnapshotHandle::new(writer.compose_snapshot());
        let handle = snapshots.clone();
        let thread = std::thread::Builder::new()
            .name("kcore-ingest-writer".into())
            .spawn(move || writer.run(rx, handle))
            .expect("spawn ingest writer");
        Ok(IngestService {
            tx,
            snapshots,
            writer: Some(thread),
        })
    }

    /// Non-blocking submission: `QueueFull` is the backpressure signal.
    pub fn try_submit(&self, event: GraphEvent) -> Result<(), IngestError> {
        match self.tx.try_send(Msg::Event(event)) {
            Ok(()) => Ok(()),
            Err(TrySendError::Full(_)) => Err(IngestError::QueueFull),
            Err(TrySendError::Disconnected(_)) => Err(IngestError::Closed),
        }
    }

    /// Blocking submission: waits for queue space (the natural producer
    /// throttle when the writer is the bottleneck).
    pub fn submit(&self, event: GraphEvent) -> Result<(), IngestError> {
        self.tx
            .send(Msg::Event(event))
            .map_err(|_| IngestError::Closed)
    }

    /// Blocking submission of a whole stream, in order.
    pub fn submit_all<I: IntoIterator<Item = GraphEvent>>(
        &self,
        events: I,
    ) -> Result<usize, IngestError> {
        let mut sent = 0;
        for e in events {
            self.submit(e)?;
            sent += 1;
        }
        Ok(sent)
    }

    /// Advances the scripted clock (monotone ns). In wall mode ticks are
    /// accepted but ignored for deadlines (real time governs).
    pub fn tick(&self, now_ns: u64) -> Result<(), IngestError> {
        self.tx
            .send(Msg::Tick(now_ns))
            .map_err(|_| IngestError::Closed)
    }

    /// Flush barrier: forces the pending micro-batch through, publishes,
    /// and returns the resulting snapshot (which covers every event
    /// submitted before this call).
    pub fn flush(&self) -> Result<Arc<CoreSnapshot>, IngestError> {
        let (ack_tx, ack_rx) = mpsc::channel();
        self.tx
            .send(Msg::Flush(ack_tx))
            .map_err(|_| IngestError::Closed)?;
        ack_rx.recv().map_err(|_| IngestError::Closed)
    }

    /// The snapshot slot readers load from (clone per reader thread).
    pub fn snapshots(&self) -> SnapshotHandle {
        self.snapshots.clone()
    }

    /// Subscribes to every future snapshot publication (unbounded
    /// buffering on the subscriber side — a test and audit hook, not a
    /// flow-controlled consumer API).
    pub fn subscribe(&self) -> Result<SnapshotReceiver, IngestError> {
        let (tx, rx) = mpsc::channel();
        self.tx
            .send(Msg::Subscribe(tx))
            .map_err(|_| IngestError::Closed)?;
        Ok(rx)
    }

    /// Parks the writer until the returned guard drops — deterministic
    /// backpressure in tests (park, fill the queue, observe `QueueFull`)
    /// and a maintenance hatch (quiesce without tearing down). Returns
    /// once the writer is actually parked.
    pub fn pause(&self) -> Result<IngestPause, IngestError> {
        let (ack_tx, ack_rx) = mpsc::channel();
        let (release_tx, release_rx) = mpsc::channel();
        self.tx
            .send(Msg::Pause(ack_tx, release_rx))
            .map_err(|_| IngestError::Closed)?;
        ack_rx.recv().map_err(|_| IngestError::Closed)?;
        Ok(IngestPause {
            _release: release_tx,
        })
    }

    /// Graceful shutdown: drains the queue, flushes the pending batch,
    /// persists a final index snapshot (durability on), and returns the
    /// report plus the engine for inspection.
    pub fn shutdown(mut self) -> (IngestReport, M) {
        let _ = self.tx.send(Msg::Shutdown { graceful: true });
        let (report, journaled) = self
            .writer
            .take()
            .expect("writer already joined")
            .join()
            .expect("ingest writer panicked");
        (report, journaled.into_inner())
    }

    /// Unclean teardown: the writer stops at the next message without
    /// flushing the pending batch and without a final persist — the
    /// crash-simulation hook the recovery tests lean on. Events already
    /// shipped to the journal survive; buffered ones are lost, exactly
    /// like a kill would lose them.
    pub fn abort(mut self) {
        let _ = self.tx.send(Msg::Shutdown { graceful: false });
        if let Some(h) = self.writer.take() {
            let _ = h.join();
        }
    }
}

impl<M: IngestEngine> Drop for IngestService<M> {
    fn drop(&mut self) {
        if let Some(h) = self.writer.take() {
            let _ = self.tx.send(Msg::Shutdown { graceful: true });
            let _ = h.join();
        }
    }
}

/// RAII guard from [`IngestService::pause`]; dropping it resumes the
/// writer.
pub struct IngestPause {
    _release: mpsc::Sender<()>,
}

struct Writer<M: IngestEngine> {
    engine: Journaled<M>,
    cfg: IngestConfig,
    sink: Option<JournalSink>,
    pending: Vec<GraphEvent>,
    /// Writer-clock time the current batch opened (first buffered event).
    batch_open_ns: Option<u64>,
    /// Scripted-clock value (scripted mode only).
    now_ns: u64,
    origin: Instant,
    epoch: u64,
    /// Events applied so far (prefix length; journal seqs `0..ops`).
    ops: u64,
    /// `ops` at the last publication (avoid republishing identical state).
    published_ops: u64,
    ship_cursor: u64,
    batches_since_persist: usize,
    subscribers: Vec<mpsc::Sender<Arc<CoreSnapshot>>>,
    /// Copy-on-write mirror of the engine's cores + incremental
    /// histogram — what snapshots are composed from, in O(changed).
    mirror: CoreMirror,
    /// Whether the engine records core changes for us.
    tracking: bool,
    /// Reused drain buffer (no steady-state allocation per flush).
    change_buf: Vec<VertexId>,
    report: IngestReport,
}

impl<M: IngestEngine> Writer<M> {
    fn now(&self) -> u64 {
        match self.cfg.clock {
            ClockMode::Wall => self.origin.elapsed().as_nanos() as u64,
            ClockMode::Scripted => self.now_ns,
        }
    }

    /// Cuts a snapshot from the mirror: O(chunks) `Arc` clones for the
    /// cores plus the O(levels) histogram — never an O(n) copy.
    fn compose_snapshot(&self) -> CoreSnapshot {
        let engine = self.engine.engine();
        CoreSnapshot {
            epoch: self.epoch,
            ops: self.ops,
            num_vertices: engine.graph_ref().num_vertices(),
            num_edges: engine.graph_ref().num_edges(),
            cores: self.mirror.snapshot_cores(),
            histogram: self.mirror.histogram(),
            degeneracy: self.mirror.degeneracy(),
            published_at_ns: self.now(),
        }
    }

    /// Brings the mirror up to date with the engine after a flush —
    /// `O(changed)` via the drained change set when tracking is on, or
    /// the chunk-compare fallback (O(n) compare, O(changed) copy, and
    /// untouched chunks keep their snapshot-shared allocation).
    fn sync_mirror(&mut self) {
        let engine = self.engine.engine_mut();
        let n = engine.graph_ref().num_vertices();
        if n > self.mirror.len() {
            self.mirror.grow(n);
        }
        let mut buf = std::mem::take(&mut self.change_buf);
        buf.clear();
        if self.tracking && engine.drain_core_changes(&mut buf) {
            self.report.tracked_drains += 1;
            let cores = engine.core_slice();
            for &v in &buf {
                if self.mirror.apply(v, cores[v as usize]) {
                    self.report.chunks_copied += 1;
                }
            }
        } else {
            self.report.full_syncs += 1;
            let (_, copied) = self.mirror.sync_full(engine.core_slice());
            self.report.chunks_copied += copied as u64;
        }
        self.change_buf = buf;
        debug_assert!(
            self.mirror.snapshot_cores().to_vec() == self.engine.engine().core_slice(),
            "mirror diverged from the engine"
        );
    }

    fn publish(&mut self, handle: &SnapshotHandle) {
        self.epoch += 1;
        let snap = Arc::new(self.compose_snapshot());
        handle.publish(snap.clone());
        self.subscribers.retain(|s| s.send(snap.clone()).is_ok());
        self.published_ops = self.ops;
        self.report.epochs_published += 1;
    }

    /// Applies the pending micro-batch, ships the journal tail, and
    /// publishes per the cadence. The engine's batch entry points see
    /// maximal same-kind runs (a micro-batch is at most `max_batch`
    /// events, so `replay_batched` groups each run into one call).
    fn flush(&mut self, handle: &SnapshotHandle) {
        if self.pending.is_empty() {
            return;
        }
        let t0 = self.now();
        let stats = replay_batched(
            &mut self.engine,
            self.pending.drain(..),
            self.cfg.max_batch.max(1),
        );
        self.batch_open_ns = None;
        self.ops = self.engine.next_seq();
        self.report.update_stats.absorb(stats);
        self.report.batches += 1;

        // Ship the journal tail (incremental cursor: each entry exactly
        // once). Without a sink the entries are dropped — the recorder
        // is still what assigns seqs, so `ops` stays exact.
        let tail = self.engine.drain_since(self.ship_cursor);
        self.ship_cursor = self.engine.next_seq();
        if let Some(sink) = &mut self.sink {
            // Fail-stop on durability errors: a journal that silently
            // stops growing would turn recovery into data loss.
            sink.append(&tail).expect("journal append failed");
        }
        self.report.entries_shipped += tail.len() as u64;
        let apply_ns = self.now().saturating_sub(t0);
        if self.report.batch_apply_ns.len() < LATENCY_SAMPLE_CAP {
            self.report.batch_apply_ns.push(apply_ns);
        } else {
            let slot = (self.report.batches - 1) as usize % LATENCY_SAMPLE_CAP;
            self.report.batch_apply_ns[slot] = apply_ns;
        }

        // Snapshot maintenance: sync the mirror every flush (the change
        // log must be drained even on non-publishing batches) and
        // publish per the cadence. Timed on the wall clock even in
        // scripted mode — publish cost is a real-machine metric, and
        // reading `Instant` does not perturb scripted determinism.
        let p0 = Instant::now();
        self.sync_mirror();
        if self
            .report
            .batches
            .is_multiple_of(self.cfg.publish_every_batches.max(1) as u64)
        {
            self.publish(handle);
        }
        let publish_ns = p0.elapsed().as_nanos() as u64;
        if self.report.publish_ns.len() < LATENCY_SAMPLE_CAP {
            self.report.publish_ns.push(publish_ns);
        } else {
            let slot = (self.report.batches - 1) as usize % LATENCY_SAMPLE_CAP;
            self.report.publish_ns[slot] = publish_ns;
        }
        self.batches_since_persist += 1;
        if let Some(d) = &self.cfg.durability {
            if d.snapshot_every_batches > 0
                && self.batches_since_persist >= d.snapshot_every_batches
            {
                self.persist(false);
            }
        }
    }

    /// Persists the index snapshot (final = graceful-shutdown variant,
    /// which tolerates engines without a persistent form only when no
    /// durability was requested — unreachable here since `cfg.durability`
    /// gates the call).
    fn persist(&mut self, _final_snapshot: bool) {
        let d = self.cfg.durability.as_ref().expect("durability configured");
        let ops = self.ops;
        // Route through the engine's own persistence hook first so the
        // trait stays the single seam; the planner engine writes the
        // `OrderCore::save` payload, which `save_index_snapshot` wraps
        // in the ops header.
        let snapshot_path = d.snapshot_path.clone();
        let engine = self.engine.engine_mut();
        let mut payload: Vec<u8> = Vec::new();
        engine
            .persist_index(&mut payload)
            .expect("engine cannot persist an index (durability requires one)");
        write_snapshot_payload(&snapshot_path, ops, &payload).expect("snapshot write failed");
        self.batches_since_persist = 0;
        self.report.snapshots_persisted += 1;
    }

    fn deadline(&self) -> Option<u64> {
        match (self.batch_open_ns, self.cfg.flush_interval_ns) {
            (Some(open), interval) if interval != u64::MAX => Some(open.saturating_add(interval)),
            _ => None,
        }
    }

    fn run(mut self, rx: Receiver<Msg>, handle: SnapshotHandle) -> (IngestReport, Journaled<M>) {
        loop {
            // Wall mode parks until the flush deadline of the oldest
            // buffered event; scripted mode blocks indefinitely (time
            // only moves via Tick messages).
            let msg = match (self.cfg.clock, self.deadline()) {
                (ClockMode::Wall, Some(deadline)) => {
                    let now = self.now();
                    if now >= deadline {
                        self.flush(&handle);
                        continue;
                    }
                    match rx.recv_timeout(Duration::from_nanos(deadline - now)) {
                        Ok(m) => m,
                        Err(mpsc::RecvTimeoutError::Timeout) => {
                            self.flush(&handle);
                            continue;
                        }
                        Err(mpsc::RecvTimeoutError::Disconnected) => break,
                    }
                }
                _ => match rx.recv() {
                    Ok(m) => m,
                    Err(_) => break, // all handles gone: graceful drain
                },
            };
            match msg {
                Msg::Event(e) => {
                    if self.pending.is_empty() {
                        self.batch_open_ns = Some(self.now());
                    }
                    self.pending.push(e);
                    self.report.events += 1;
                    if self.pending.len() >= self.cfg.max_batch.max(1) {
                        self.flush(&handle);
                    }
                }
                Msg::Tick(t) => {
                    self.now_ns = self.now_ns.max(t);
                    if let Some(deadline) = self.deadline() {
                        if self.now() >= deadline {
                            self.flush(&handle);
                        }
                    }
                }
                Msg::Flush(ack) => {
                    self.flush(&handle);
                    if self.published_ops != self.ops {
                        self.publish(&handle);
                    }
                    let _ = ack.send(handle.load());
                }
                Msg::Subscribe(tx) => self.subscribers.push(tx),
                Msg::Pause(ack, release) => {
                    let _ = ack.send(());
                    // Parked until the guard drops (sender disconnect).
                    let _ = release.recv();
                }
                Msg::Shutdown { graceful } => {
                    if !graceful {
                        // Crash simulation: pending events and the final
                        // persist are lost, shipped journal survives.
                        self.report.mirror_chunks = self.mirror.num_chunks() as u64;
                        return (self.report, self.engine);
                    }
                    break;
                }
            }
        }
        // Graceful exit: flush what's buffered, publish the final state,
        // persist a last snapshot when durability is on.
        self.flush(&handle);
        if self.published_ops != self.ops {
            self.publish(&handle);
        }
        if self.cfg.durability.is_some() {
            self.persist(true);
        }
        self.report.mirror_chunks = self.mirror.num_chunks() as u64;
        (self.report, self.engine)
    }
}

/// Writes the snapshot header + an already-serialised index payload via
/// the temp-file + rename protocol. The format (magic, version, header)
/// is owned by [`crate::durability`]; this indirection exists so the
/// writer persists whatever the [`IngestEngine::persist_index`] hook
/// produced instead of hard-coding one engine type.
fn write_snapshot_payload(path: &std::path::Path, ops: u64, payload: &[u8]) -> io::Result<()> {
    crate::durability::write_snapshot_bytes(path, ops, payload)
}
