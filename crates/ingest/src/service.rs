//! The ingest service: a single-writer, multi-reader streaming loop.
//!
//! One dedicated **writer thread** owns the maintenance engine (wrapped
//! in a [`Journaled`] recorder) and is fed [`GraphEvent`]s through a
//! **bounded** MPSC channel — the bound is the backpressure contract:
//! [`IngestService::try_submit`] reports [`IngestError::QueueFull`]
//! instead of buffering unboundedly, [`IngestService::submit`] blocks
//! the producer until the writer drains. A **micro-batcher** buffers
//! events and flushes on whichever comes first: the batch-size cap or a
//! clock tick past the flush interval. Each flush applies the batch
//! through the engine's planner-driven batch path (via
//! [`replay_batched`], so mixed insert/remove runs group correctly),
//! ships the journal tail to the durability sink, and publishes a fresh
//! epoch-versioned [`CoreSnapshot`] — readers never observe a
//! half-applied batch and never block the writer.
//!
//! ## Clocks and determinism
//!
//! Production uses [`ClockMode::Wall`]. Tests use
//! [`ClockMode::Scripted`], where time advances **only** through
//! [`IngestService::tick`] messages travelling the same channel as
//! events: the writer's behaviour becomes a pure function of the message
//! sequence, so flush boundaries, epochs, and journal contents are
//! bit-reproducible on any host — including this repo's 1-CPU CI
//! container — with no sleeps and no wall-clock reads. (This is the
//! same testing posture as `Planner::with_clock`, pushed one level up:
//! instead of injecting a closure the writer polls — which would race
//! with event arrival — the scripted clock serialises time itself into
//! the event stream.)
//!
//! ## Supervision and self-healing
//!
//! The writer is supervised: batch application runs under
//! `catch_unwind`, journal/checkpoint I/O errors are contained instead
//! of fatal, and a [`ServiceHealth`] state machine
//! (`Healthy → Degraded → Recovering → Failed`) is exported through
//! [`IngestService::health`]. When the engine panics mid-batch the
//! writer discards the poisoned state and rebuilds through
//! [`crate::durability::recover`] under a bounded, scripted-clock-aware
//! backoff ([`RecoveryPolicy`]); readers keep serving the last published
//! epoch throughout — publication is the last thing recovery does, and
//! epochs stay monotone because the epoch counter lives in the writer,
//! not the engine. Only when every rung of the recovery ladder is
//! exhausted does the service park in `Failed`, still serving reads.

use crate::chunked::{CoreMirror, MetricMirror};
use crate::durability::{
    persist_index_snapshot, recover, DurabilityConfig, JournalSink, Recovered,
};
use crate::snapshot::{CoreSnapshot, SnapshotHandle, SnapshotReceiver};
use kcore_decomp::Parallelism;
use kcore_graph::{DynamicGraph, VertexId};
use kcore_maint::journal::{replay_batched, GraphEvent, Journaled};
use kcore_maint::{
    CoreMaintainer, PlannedCore, PlannerConfig, PlannerStats, RecomputeCore, TreapOrderCore,
    UpdateStats,
};
use kcore_obs::{Counter, Gauge, Histogram, MetricsRegistry, SpanRecorder};
use std::io;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::mpsc::{self, Receiver, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// An engine the ingest writer can drive: any [`CoreMaintainer`] that
/// can cross the thread boundary, with optional core-change-tracking
/// and index-persistence hooks.
pub trait IngestEngine: CoreMaintainer + Send + 'static {
    /// Asks the engine to start recording which vertices change core
    /// number, to be drained via [`IngestEngine::drain_core_changes`].
    /// Returns `false` (the default) for engines without tracking —
    /// the writer then syncs its snapshot mirror by a chunk-granular
    /// compare instead of a change list.
    fn enable_core_change_tracking(&mut self) -> bool {
        false
    }

    /// Appends the vertices whose core changed since the last drain to
    /// `out` (duplicates allowed; the caller reads final values) and
    /// clears the record. `false` means "no tracked set — do a full
    /// sync" (tracking off, or the log was overwhelmed).
    fn drain_core_changes(&mut self, _out: &mut Vec<VertexId>) -> bool {
        false
    }

    /// Writes the engine's persistent index form, if it has one. The
    /// default reports unsupported — durability then requires an engine
    /// that overrides this (the planner-driven order engine does).
    fn persist_index(&mut self, _out: &mut dyn io::Write) -> io::Result<()> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "engine has no persistent index form",
        ))
    }

    /// Replaces this engine's state with one rebuilt by
    /// [`crate::durability::recover`], keeping any wrapper-local
    /// configuration. Returns `false` (the default) for engines that
    /// cannot adopt a recovered [`PlannedCore`] — the supervisor then
    /// parks in [`ServiceHealth::Failed`] instead of self-healing.
    fn adopt_recovered(&mut self, _rec: Recovered) -> bool {
        false
    }

    /// The engine's `deg⁺` and `mcd` arrays, when it maintains them —
    /// feeds the opt-in [`crate::chunked::MetricMirror`] publication
    /// ([`IngestConfig::publish_metrics`]). `&mut` because order-based
    /// engines may refresh a deferred index first. `None` (the default)
    /// publishes no metrics.
    fn metric_slices(&mut self) -> Option<(&[u32], &[u32])> {
        None
    }

    /// The engine's planner decision counters and cost-model EWMAs, when
    /// it is planner-driven — exported as `planner_*` metrics by the
    /// writer after every flush. `None` (the default) exports nothing.
    fn planner_stats(&self) -> Option<&PlannerStats> {
        None
    }
}

impl IngestEngine for PlannedCore {
    fn enable_core_change_tracking(&mut self) -> bool {
        PlannedCore::enable_core_change_tracking(self);
        true
    }

    fn drain_core_changes(&mut self, out: &mut Vec<VertexId>) -> bool {
        PlannedCore::drain_core_changes(self, out)
    }

    fn persist_index(&mut self, out: &mut dyn io::Write) -> io::Result<()> {
        // `order()` refreshes the deferred k-order first: the persisted
        // form always round-trips through `OrderCore::load` validation.
        self.order().save(out)
    }

    fn adopt_recovered(&mut self, rec: Recovered) -> bool {
        // Recovery rebuilds the engine from journal + snapshot, which
        // know nothing about wrapper-local configuration — re-apply the
        // parallelism so a self-healed writer keeps its worker team.
        let par = self.parallelism();
        *self = rec.engine;
        self.set_parallelism(par);
        true
    }

    fn metric_slices(&mut self) -> Option<(&[u32], &[u32])> {
        Some(PlannedCore::metric_slices(self))
    }

    fn planner_stats(&self) -> Option<&PlannerStats> {
        Some(PlannedCore::planner_stats(self))
    }
}

impl IngestEngine for TreapOrderCore {
    fn enable_core_change_tracking(&mut self) -> bool {
        TreapOrderCore::enable_core_change_tracking(self);
        true
    }

    fn drain_core_changes(&mut self, out: &mut Vec<VertexId>) -> bool {
        TreapOrderCore::drain_core_changes(self, out)
    }

    fn persist_index(&mut self, out: &mut dyn io::Write) -> io::Result<()> {
        self.save(out)
    }

    fn metric_slices(&mut self) -> Option<(&[u32], &[u32])> {
        Some((self.deg_plus_slice(), self.mcd_slice()))
    }
}

/// The oracle instantiation (decompose-per-batch); no change tracking —
/// the writer exercises the chunk-compare fallback — and durability is
/// unsupported.
impl IngestEngine for RecomputeCore {}

impl IngestEngine for crate::faults::FlakyEngine {
    fn enable_core_change_tracking(&mut self) -> bool {
        // Tracking would observe the poisoned half-batch; the mirror's
        // chunk-compare fallback is the robust path for a flaky engine.
        false
    }

    fn persist_index(&mut self, out: &mut dyn io::Write) -> io::Result<()> {
        self.persist_inner(out)
    }

    fn adopt_recovered(&mut self, rec: Recovered) -> bool {
        self.replace_inner(rec.engine);
        true
    }
}

/// Submission failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IngestError {
    /// The bounded queue is at capacity (backpressure): retry, shed, or
    /// switch to the blocking [`IngestService::submit`].
    QueueFull,
    /// The writer thread is gone (shut down, aborted, or panicked).
    Closed,
}

impl std::fmt::Display for IngestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IngestError::QueueFull => write!(f, "ingest queue full"),
            IngestError::Closed => write!(f, "ingest service closed"),
        }
    }
}

impl std::error::Error for IngestError {}

/// Which clock drives interval flushes (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ClockMode {
    /// Real time: the writer parks in `recv_timeout` until the flush
    /// deadline of the oldest buffered event.
    #[default]
    Wall,
    /// Time advances only via [`IngestService::tick`] messages;
    /// deterministic on any host.
    Scripted,
}

/// The writer's health state machine, exported through
/// [`IngestService::health`]. Transitions:
/// `Healthy → Degraded` on contained I/O trouble (failed journal ship
/// or fsync, failed checkpoint) and after a recovery;
/// `Degraded → Healthy` after [`RecoveryPolicy::healthy_after`] clean
/// flushes; `→ Recovering` on an engine panic (readers keep serving the
/// last published epoch); `Recovering → Degraded` when `recover()`
/// succeeds; `→ Failed` when retries are exhausted — the writer then
/// drops events but keeps serving reads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[repr(u8)]
pub enum ServiceHealth {
    /// Everything applied, shipped, and persisted cleanly.
    #[default]
    Healthy = 0,
    /// Serving and applying, but some durability work is outstanding or
    /// state was recently rebuilt; clears after clean flushes.
    Degraded = 1,
    /// The engine is down; the supervisor is rebuilding it through
    /// `recover()` under backoff. Events are buffered (bounded), reads
    /// serve the last published epoch.
    Recovering = 2,
    /// Recovery exhausted or unsupported: events are dropped, reads
    /// still serve the last published epoch.
    Failed = 3,
}

impl ServiceHealth {
    fn from_u8(v: u8) -> ServiceHealth {
        match v {
            0 => ServiceHealth::Healthy,
            1 => ServiceHealth::Degraded,
            2 => ServiceHealth::Recovering,
            _ => ServiceHealth::Failed,
        }
    }
}

impl std::fmt::Display for ServiceHealth {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceHealth::Healthy => write!(f, "healthy"),
            ServiceHealth::Degraded => write!(f, "degraded"),
            ServiceHealth::Recovering => write!(f, "recovering"),
            ServiceHealth::Failed => write!(f, "failed"),
        }
    }
}

/// How the supervisor retries [`crate::durability::recover`] after an
/// engine panic, and when a degraded service is considered healthy
/// again. Backoff delays are writer-clock nanoseconds: scripted ticks
/// drive them deterministically in tests, wall time in production.
#[derive(Debug, Clone)]
pub struct RecoveryPolicy {
    /// `recover()` attempts per incident before parking in
    /// [`ServiceHealth::Failed`]. Also bounds consecutive failed
    /// journal-ship rounds.
    pub max_attempts: u32,
    /// Delay before the 2nd attempt (the 1st is immediate).
    pub backoff_base_ns: u64,
    /// Multiplier between consecutive attempt delays.
    pub backoff_factor: u32,
    /// Treap seed for the rebuilt index.
    pub seed: u64,
    /// Micro-batch size for the recovery replay.
    pub replay_batch: usize,
    /// Clean flushes before `Degraded` clears back to `Healthy`.
    pub healthy_after: u32,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy {
            max_attempts: 3,
            backoff_base_ns: 1_000_000, // 1 ms
            backoff_factor: 2,
            seed: 0xC0DE,
            replay_batch: 256,
            healthy_after: 2,
        }
    }
}

/// Observability wiring for a service instance (see `kcore-obs`).
///
/// Enabled by default: the cost is a handful of relaxed atomics and a
/// few span records per *flush* (never per event) — the bench's
/// `--max-obs-overhead-ratio` gate holds it under 5% on the churn
/// workload. Disable for A/B overhead measurements.
#[derive(Debug, Clone)]
pub struct ObsConfig {
    /// Register metrics and record flush-stage spans.
    pub enabled: bool,
    /// Span-ring capacity in spans (a flush records one span per
    /// pipeline stage, currently 6).
    pub span_capacity: usize,
}

impl Default for ObsConfig {
    fn default() -> Self {
        ObsConfig {
            enabled: true,
            span_capacity: 256,
        }
    }
}

impl ObsConfig {
    /// Metrics and tracing fully off (for overhead A/B runs).
    pub fn disabled() -> Self {
        ObsConfig {
            enabled: false,
            ..ObsConfig::default()
        }
    }

    /// Sets the retained-span ring capacity.
    pub fn with_span_capacity(mut self, cap: usize) -> Self {
        self.span_capacity = cap;
        self
    }
}

/// Service tunables.
#[derive(Debug, Clone)]
pub struct IngestConfig {
    /// Bounded-queue capacity — the backpressure depth.
    pub queue_capacity: usize,
    /// Flush when this many events are buffered.
    pub max_batch: usize,
    /// Flush when the oldest buffered event is this old (`u64::MAX`
    /// disables interval flushes: size, explicit flush, shutdown only).
    pub flush_interval_ns: u64,
    /// Publish a snapshot every this many flushes (`1` = every batch;
    /// explicit [`IngestService::flush`] always publishes).
    pub publish_every_batches: usize,
    /// Interval-flush time source.
    pub clock: ClockMode,
    /// Journal/snapshot persistence; `None` runs in-memory only.
    pub durability: Option<DurabilityConfig>,
    /// Planner configuration for engines spawned by the convenience
    /// constructors ([`IngestService::spawn_planned`] and the recovery
    /// path).
    pub planner: PlannerConfig,
    /// Maintenance parallelism for engines spawned by the convenience
    /// constructors: component passes run on the shared worker team and
    /// the planner prices the parallel strategies. `None` keeps the
    /// writer strictly serial (the default).
    pub parallelism: Option<Parallelism>,
    /// Self-healing: rebuild a panicked engine through `recover()`
    /// (requires durability). `None` still catches the panic — the
    /// writer parks in [`ServiceHealth::Failed`] and keeps serving
    /// reads instead of dying.
    pub recovery: Option<RecoveryPolicy>,
    /// Publish the engine's `deg⁺`/`mcd` arrays with every snapshot
    /// (chunked, COW-shared across epochs). Off by default: keeping
    /// them costs a chunk-compare per flush, and on a planner engine a
    /// deferred k-order rebuild per flush that touched the order.
    pub publish_metrics: bool,
    /// Observability wiring: metrics registry + flush-stage span tracer
    /// ([`IngestService::metrics`] / [`IngestService::spans`]).
    pub obs: ObsConfig,
}

impl Default for IngestConfig {
    fn default() -> Self {
        IngestConfig {
            queue_capacity: 1024,
            max_batch: 256,
            flush_interval_ns: 5_000_000, // 5 ms
            publish_every_batches: 1,
            clock: ClockMode::Wall,
            durability: None,
            planner: PlannerConfig::default(),
            parallelism: None,
            recovery: None,
            publish_metrics: false,
            obs: ObsConfig::default(),
        }
    }
}

impl IngestConfig {
    /// Scripted-clock config with interval flushes disabled by default —
    /// the deterministic test shape (size/tick/flush-driven only).
    pub fn scripted() -> Self {
        IngestConfig {
            clock: ClockMode::Scripted,
            flush_interval_ns: u64::MAX,
            ..IngestConfig::default()
        }
    }

    /// Sets the micro-batch size cap.
    pub fn max_batch(mut self, max_batch: usize) -> Self {
        self.max_batch = max_batch.max(1);
        self
    }

    /// Sets the bounded-queue capacity.
    pub fn queue_capacity(mut self, cap: usize) -> Self {
        self.queue_capacity = cap.max(1);
        self
    }

    /// Sets the flush interval in nanoseconds.
    pub fn flush_interval_ns(mut self, ns: u64) -> Self {
        self.flush_interval_ns = ns;
        self
    }

    /// Attaches durability.
    pub fn durable(mut self, d: DurabilityConfig) -> Self {
        self.durability = Some(d);
        self
    }

    /// Enables supervised self-healing under `policy`.
    pub fn self_healing(mut self, policy: RecoveryPolicy) -> Self {
        self.recovery = Some(policy);
        self
    }

    /// Enables thread-parallel maintenance in spawned engines.
    pub fn parallel(mut self, par: Parallelism) -> Self {
        self.parallelism = Some(par);
        self
    }

    /// Publishes `deg⁺`/`mcd` metric mirrors with every snapshot.
    pub fn publish_metrics(mut self, on: bool) -> Self {
        self.publish_metrics = on;
        self
    }

    /// Sets the observability wiring (metrics registry + span tracer).
    pub fn observe(mut self, obs: ObsConfig) -> Self {
        self.obs = obs;
        self
    }
}

/// Bounded exponential backoff for [`IngestService::submit_with_retry`].
#[derive(Debug, Clone, Copy)]
pub struct RetryBudget {
    /// Retries after the initial attempt (total tries = `attempts + 1`).
    pub attempts: u32,
    /// Delay before the first retry, nanoseconds.
    pub base_delay_ns: u64,
    /// Multiplier between consecutive delays.
    pub factor: u32,
    /// Per-wait ceiling, nanoseconds.
    pub max_delay_ns: u64,
}

impl Default for RetryBudget {
    fn default() -> Self {
        RetryBudget {
            attempts: 8,
            base_delay_ns: 100_000, // 100 µs
            factor: 2,
            max_delay_ns: 10_000_000, // 10 ms
        }
    }
}

/// What the writer hands back at shutdown.
#[derive(Debug, Default, Clone)]
pub struct IngestReport {
    /// Events the writer received.
    pub events: u64,
    /// Micro-batches flushed.
    pub batches: u64,
    /// Aggregate engine stats over every flush.
    pub update_stats: UpdateStats,
    /// Snapshots published.
    pub epochs_published: u64,
    /// Journal entries shipped to the sink.
    pub entries_shipped: u64,
    /// Index snapshots persisted.
    pub snapshots_persisted: u64,
    /// Per-flush apply+ship duration, writer-clock ns (the bench's p50 /
    /// p99 batch-latency source; scripted clocks make these synthetic).
    /// A bounded log-bucketed histogram — O(1) memory however long the
    /// run, with p50/p99 exact to one bucket (≤ 12.5%).
    pub batch_apply: Histogram,
    /// Per-flush snapshot-maintenance cost (mirror sync + publication),
    /// **wall**-clock ns even under a scripted clock — metrics do not
    /// affect determinism. Same histogram shape as `batch_apply`. This
    /// is the publish-cost gate's sample source: O(changed), not O(n).
    pub publish: Histogram,
    /// Chunks copy-on-written into the snapshot mirror, totalled over
    /// every flush (the "publish cost is proportional to the diff"
    /// witness; compare against `mirror_chunks` × flushes).
    pub chunks_copied: u64,
    /// Chunks backing the mirror at shutdown.
    pub mirror_chunks: u64,
    /// Mirror syncs served from the engine's tracked change set
    /// (`O(changed)`).
    pub tracked_drains: u64,
    /// Mirror syncs that fell back to the chunk-compare path (`O(n)`
    /// compare, still `O(changed)` copy).
    pub full_syncs: u64,
    /// Engine panics caught by the supervisor.
    pub engine_panics: u64,
    /// Successful `recover()` rebuilds after an engine panic.
    pub recoveries: u64,
    /// `recover()` attempts that failed and were retried under backoff.
    pub recovery_retries: u64,
    /// Incidents that exhausted recovery and parked the writer in
    /// [`ServiceHealth::Failed`].
    pub recovery_failures: u64,
    /// Journal ship rounds (append or fsync) that failed and were
    /// retried on later flushes.
    pub journal_ship_failures: u64,
    /// Index-snapshot persists that failed (non-fatal: the journal
    /// still carries everything, recovery just replays more).
    pub checkpoint_failures: u64,
    /// Events lost to an engine panic or dropped while
    /// `Recovering`/`Failed`.
    pub events_lost: u64,
    /// Health at shutdown.
    pub final_health: ServiceHealth,
}

impl IngestReport {
    /// Aggregates the per-writer reports of a multi-writer deployment
    /// (one per shard) into one: counters sum, engine stats absorb,
    /// health takes the worst, and the latency histograms merge by
    /// bucket addition — exactly percentile-safe (to bucket
    /// resolution): no writer's tail disappears and no writer's volume
    /// drowns another's percentiles beyond its true event share.
    pub fn merge(reports: &[IngestReport]) -> IngestReport {
        let mut out = IngestReport::default();
        for r in reports {
            out.events += r.events;
            out.batches += r.batches;
            out.update_stats.absorb(r.update_stats);
            out.epochs_published += r.epochs_published;
            out.entries_shipped += r.entries_shipped;
            out.snapshots_persisted += r.snapshots_persisted;
            out.chunks_copied += r.chunks_copied;
            out.mirror_chunks += r.mirror_chunks;
            out.tracked_drains += r.tracked_drains;
            out.full_syncs += r.full_syncs;
            out.engine_panics += r.engine_panics;
            out.recoveries += r.recoveries;
            out.recovery_retries += r.recovery_retries;
            out.recovery_failures += r.recovery_failures;
            out.journal_ship_failures += r.journal_ship_failures;
            out.checkpoint_failures += r.checkpoint_failures;
            out.events_lost += r.events_lost;
            if r.final_health as u8 > out.final_health as u8 {
                out.final_health = r.final_health;
            }
            out.batch_apply.absorb(&r.batch_apply);
            out.publish.absorb(&r.publish);
        }
        out
    }

    /// Representative per-flush apply latency samples, rank-ordered and
    /// capped at [`LATENCY_SAMPLE_CAP`] — reconstructed from the
    /// bounded histogram's buckets.
    #[deprecated(note = "use the `batch_apply` histogram's p50()/p99()/quantile() directly")]
    pub fn batch_apply_ns(&self) -> Vec<u64> {
        self.batch_apply.samples(LATENCY_SAMPLE_CAP)
    }

    /// Representative per-flush publish-cost samples, rank-ordered and
    /// capped at [`LATENCY_SAMPLE_CAP`] — reconstructed from the
    /// bounded histogram's buckets.
    #[deprecated(note = "use the `publish` histogram's p50()/p99()/quantile() directly")]
    pub fn publish_ns(&self) -> Vec<u64> {
        self.publish.samples(LATENCY_SAMPLE_CAP)
    }
}

/// Cap on reconstructed latency-sample vectors returned by the
/// deprecated [`IngestReport::batch_apply_ns`] / [`IngestReport::publish_ns`]
/// accessors (the histograms themselves are bounded by construction).
pub const LATENCY_SAMPLE_CAP: usize = 4096;

/// While `Recovering`, buffered events are capped at this multiple of
/// `max(queue_capacity, max_batch)`; overflow is dropped and counted in
/// [`IngestReport::events_lost`].
const RECOVERING_BUFFER_FACTOR: usize = 4;

enum Msg {
    Event(GraphEvent),
    Tick(u64),
    Flush(mpsc::Sender<Arc<CoreSnapshot>>),
    Subscribe(mpsc::Sender<Arc<CoreSnapshot>>),
    Pause(mpsc::Sender<()>, mpsc::Receiver<()>),
    Shutdown { graceful: bool },
}

/// Handle to a running ingest service. Cheap operations
/// ([`IngestService::try_submit`], [`IngestService::snapshots`]) are
/// `&self`; lifecycle operations consume the handle. Dropping the handle
/// shuts the writer down gracefully (flushing pending events and taking
/// a final persisted snapshot when durability is on).
pub struct IngestService<M: IngestEngine = PlannedCore> {
    tx: SyncSender<Msg>,
    snapshots: SnapshotHandle,
    health: Arc<AtomicU8>,
    metrics: Option<MetricsRegistry>,
    spans: Option<SpanRecorder>,
    writer: Option<JoinHandle<(IngestReport, Journaled<M>)>>,
}

impl IngestService<PlannedCore> {
    /// Spawns the default planner-driven service over `graph`.
    pub fn spawn_planned(graph: DynamicGraph, seed: u64, cfg: IngestConfig) -> io::Result<Self> {
        let mut engine = PlannedCore::with_config(graph, seed, cfg.planner.clone());
        engine.set_parallelism(cfg.parallelism);
        Self::spawn_with_engine(engine, 0, cfg)
    }

    /// Resumes a recovered service: the engine continues from the
    /// restored state and journaling continues at the recovered seq, so
    /// the (re-opened, append-only) journal stays gap-free.
    pub fn spawn_recovered(rec: Recovered, cfg: IngestConfig) -> io::Result<Self> {
        Self::spawn_with_engine(rec.engine, rec.next_seq, cfg)
    }
}

impl<M: IngestEngine> IngestService<M> {
    /// Spawns the writer thread over an arbitrary engine. `start_seq` is
    /// the journal sequence to resume at (0 for a fresh stream).
    pub fn spawn_with_engine(mut engine: M, start_seq: u64, cfg: IngestConfig) -> io::Result<Self> {
        // Open the sink on the caller's thread so setup errors surface
        // synchronously instead of poisoning the writer.
        let sink = match &cfg.durability {
            Some(d) => {
                let sink = JournalSink::open(
                    &d.journal_path,
                    engine.graph_ref().num_vertices(),
                    d.fsync,
                    &d.storage,
                )?;
                // Seqs appended by this service continue at `start_seq`;
                // the file must hold exactly that many records or the
                // gap-free invariant breaks. The dangerous misuse this
                // rejects: a *fresh* spawn (start_seq 0) over a
                // directory that already holds a journal — appending
                // restarted seqs would make every later recovery read
                // the old run's prefix and silently truncate the new
                // run's records as a "torn tail". Resume with
                // `recover()` + `spawn_recovered`, or point durability
                // at a fresh directory.
                if sink.existing() != start_seq {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!(
                            "journal already holds {} events but the service would resume at seq \
                             {start_seq}; recover() + spawn_recovered to continue this journal, \
                             or use a fresh durability directory",
                            sink.existing()
                        ),
                    ));
                }
                Some(sink)
            }
            None => None,
        };
        if let Some(d) = &cfg.durability {
            // Checkpoint zero: the journal only records *events*, so a
            // service spawned over a non-empty base graph must persist
            // the base state once — otherwise a crash before the first
            // periodic snapshot would lose the base edges irrecoverably.
            // Also the point where a non-persistable engine fails fast.
            if !d.snapshot_path.exists() {
                let mut payload = Vec::new();
                engine.persist_index(&mut payload)?;
                persist_index_snapshot(d, start_seq, &payload)?;
            }
        }
        // Core-change tracking feeds the copy-on-write snapshot mirror
        // in O(changed); engines without it (the recompute oracle) fall
        // back to a chunk-compare sync per flush.
        let tracking = engine.enable_core_change_tracking();
        let mirror = CoreMirror::from_slice(engine.core_slice());
        let metrics = if cfg.publish_metrics {
            engine
                .metric_slices()
                .map(|(dp, mcd)| MetricMirror::from_slices(dp, mcd))
        } else {
            None
        };
        let journaled = Journaled::with_start_seq(engine, start_seq);
        let (tx, rx) = mpsc::sync_channel(cfg.queue_capacity.max(1));
        let health = Arc::new(AtomicU8::new(ServiceHealth::Healthy as u8));
        let report = IngestReport::default();
        let obs = cfg.obs.enabled.then(|| WriterObs::new(&cfg.obs, &report));
        let (registry, spans) = match &obs {
            Some(o) => (Some(o.registry.clone()), Some(o.spans.clone())),
            None => (None, None),
        };
        let writer = Writer {
            engine: journaled,
            cfg,
            sink,
            pending: Vec::new(),
            batch_open_ns: None,
            now_ns: 0,
            origin: Instant::now(),
            epoch: 0,
            ops: start_seq,
            published_ops: start_seq,
            ship_cursor: start_seq,
            batches_since_persist: 0,
            subscribers: Vec::new(),
            mirror,
            tracking,
            metrics,
            change_buf: Vec::new(),
            health: health.clone(),
            unshipped: Vec::new(),
            ship_failures: 0,
            sync_pending: false,
            recovery_attempts: 0,
            recovery_due_ns: 0,
            degraded_flushes_left: 0,
            obs,
            report,
        };
        let snapshots = SnapshotHandle::new(writer.compose_snapshot());
        let handle = snapshots.clone();
        let thread = std::thread::Builder::new()
            .name("kcore-ingest-writer".into())
            .spawn(move || writer.run(rx, handle))
            .expect("spawn ingest writer");
        Ok(IngestService {
            tx,
            snapshots,
            health,
            metrics: registry,
            spans,
            writer: Some(thread),
        })
    }

    /// The service's metrics registry (`None` when observability is
    /// disabled). Snapshots are live and never block the writer:
    /// `svc.metrics().unwrap().snapshot()` from any thread.
    pub fn metrics(&self) -> Option<MetricsRegistry> {
        self.metrics.clone()
    }

    /// The writer's flush-stage span ring (`None` when observability is
    /// disabled). Under a scripted clock the retained spans are
    /// bit-identical run over run.
    pub fn spans(&self) -> Option<SpanRecorder> {
        self.spans.clone()
    }

    /// Non-blocking submission: `QueueFull` is the backpressure signal.
    pub fn try_submit(&self, event: GraphEvent) -> Result<(), IngestError> {
        match self.tx.try_send(Msg::Event(event)) {
            Ok(()) => Ok(()),
            Err(TrySendError::Full(_)) => Err(IngestError::QueueFull),
            Err(TrySendError::Disconnected(_)) => Err(IngestError::Closed),
        }
    }

    /// Blocking submission: waits for queue space (the natural producer
    /// throttle when the writer is the bottleneck).
    pub fn submit(&self, event: GraphEvent) -> Result<(), IngestError> {
        self.tx
            .send(Msg::Event(event))
            .map_err(|_| IngestError::Closed)
    }

    /// Blocking submission of a whole stream, in order.
    pub fn submit_all<I: IntoIterator<Item = GraphEvent>>(
        &self,
        events: I,
    ) -> Result<usize, IngestError> {
        let mut sent = 0;
        for e in events {
            self.submit(e)?;
            sent += 1;
        }
        Ok(sent)
    }

    /// Bounded-backoff submission: retries [`IngestError::QueueFull`]
    /// up to `budget.attempts` times with exponential delays (real
    /// `thread::sleep`s — see [`IngestService::submit_with_retry_by`]
    /// for the injectable-wait form the scripted tests use). Returns
    /// the number of retries spent.
    pub fn submit_with_retry(
        &self,
        event: GraphEvent,
        budget: RetryBudget,
    ) -> Result<u32, IngestError> {
        self.submit_with_retry_by(event, budget, |ns| {
            std::thread::sleep(Duration::from_nanos(ns))
        })
    }

    /// [`IngestService::submit_with_retry`] with the wait injected:
    /// `wait(delay_ns)` is called before each retry. Tests pass a
    /// recording closure (and release backpressure from inside it), so
    /// the backoff schedule is asserted without a single wall-clock
    /// sleep.
    pub fn submit_with_retry_by(
        &self,
        event: GraphEvent,
        budget: RetryBudget,
        mut wait: impl FnMut(u64),
    ) -> Result<u32, IngestError> {
        let mut delay = budget.base_delay_ns.min(budget.max_delay_ns);
        for retry in 0..=budget.attempts {
            match self.try_submit(event) {
                Ok(()) => return Ok(retry),
                Err(IngestError::QueueFull) if retry < budget.attempts => {
                    wait(delay);
                    delay = delay
                        .saturating_mul(budget.factor.max(1) as u64)
                        .min(budget.max_delay_ns);
                }
                Err(e) => return Err(e),
            }
        }
        Err(IngestError::QueueFull)
    }

    /// Advances the scripted clock (monotone ns). In wall mode ticks are
    /// accepted but ignored for deadlines (real time governs).
    pub fn tick(&self, now_ns: u64) -> Result<(), IngestError> {
        self.tx
            .send(Msg::Tick(now_ns))
            .map_err(|_| IngestError::Closed)
    }

    /// Flush barrier: forces the pending micro-batch through, publishes,
    /// and returns the resulting snapshot (which covers every event
    /// submitted before this call). While `Recovering`/`Failed` the
    /// barrier still acks — with the last published epoch — so callers
    /// cannot deadlock on a down writer.
    pub fn flush(&self) -> Result<Arc<CoreSnapshot>, IngestError> {
        let (ack_tx, ack_rx) = mpsc::channel();
        self.tx
            .send(Msg::Flush(ack_tx))
            .map_err(|_| IngestError::Closed)?;
        ack_rx.recv().map_err(|_| IngestError::Closed)
    }

    /// The snapshot slot readers load from (clone per reader thread).
    pub fn snapshots(&self) -> SnapshotHandle {
        self.snapshots.clone()
    }

    /// The writer's current health. Reads are lock-free; the state is
    /// advisory (it can advance the instant after you read it).
    pub fn health(&self) -> ServiceHealth {
        ServiceHealth::from_u8(self.health.load(Ordering::Acquire))
    }

    /// Subscribes to every future snapshot publication (unbounded
    /// buffering on the subscriber side — a test and audit hook, not a
    /// flow-controlled consumer API).
    pub fn subscribe(&self) -> Result<SnapshotReceiver, IngestError> {
        let (tx, rx) = mpsc::channel();
        self.tx
            .send(Msg::Subscribe(tx))
            .map_err(|_| IngestError::Closed)?;
        Ok(rx)
    }

    /// Parks the writer until the returned guard drops — deterministic
    /// backpressure in tests (park, fill the queue, observe `QueueFull`)
    /// and a maintenance hatch (quiesce without tearing down). Returns
    /// once the writer is actually parked.
    pub fn pause(&self) -> Result<IngestPause, IngestError> {
        let (ack_tx, ack_rx) = mpsc::channel();
        let (release_tx, release_rx) = mpsc::channel();
        self.tx
            .send(Msg::Pause(ack_tx, release_rx))
            .map_err(|_| IngestError::Closed)?;
        ack_rx.recv().map_err(|_| IngestError::Closed)?;
        Ok(IngestPause {
            _release: release_tx,
        })
    }

    /// Graceful shutdown: drains the queue, flushes the pending batch,
    /// persists a final index snapshot (durability on), and returns the
    /// report plus the engine for inspection.
    pub fn shutdown(mut self) -> (IngestReport, M) {
        let _ = self.tx.send(Msg::Shutdown { graceful: true });
        let (report, journaled) = self
            .writer
            .take()
            .expect("writer already joined")
            .join()
            .expect("ingest writer panicked");
        (report, journaled.into_inner())
    }

    /// Unclean teardown: the writer stops at the next message without
    /// flushing the pending batch and without a final persist — the
    /// crash-simulation hook the recovery tests lean on. Events already
    /// shipped to the journal survive; buffered ones are lost, exactly
    /// like a kill would lose them.
    pub fn abort(mut self) {
        let _ = self.tx.send(Msg::Shutdown { graceful: false });
        if let Some(h) = self.writer.take() {
            let _ = h.join();
        }
    }
}

impl<M: IngestEngine> Drop for IngestService<M> {
    fn drop(&mut self) {
        if let Some(h) = self.writer.take() {
            let _ = self.tx.send(Msg::Shutdown { graceful: true });
            let _ = h.join();
        }
    }
}

/// RAII guard from [`IngestService::pause`]; dropping it resumes the
/// writer.
pub struct IngestPause {
    _release: mpsc::Sender<()>,
}

/// Planner metric handles plus the last exported counter values —
/// [`PlannerStats`] counters are cumulative, so the writer exports
/// deltas to keep the registry's counters true monotone counters.
struct PlannerObs {
    batched: Counter,
    split: Counter,
    par_split: Counter,
    recompute: Counter,
    par_recompute: Counter,
    late_recompute: Counter,
    rebuilds: Counter,
    ewma: [Gauge; 7],
    last: [usize; 7],
}

impl PlannerObs {
    fn new(reg: &MetricsRegistry) -> Self {
        PlannerObs {
            batched: reg.counter("planner_batched_total"),
            split: reg.counter("planner_split_total"),
            par_split: reg.counter("planner_par_split_total"),
            recompute: reg.counter("planner_recompute_total"),
            par_recompute: reg.counter("planner_par_recompute_total"),
            late_recompute: reg.counter("planner_late_recompute_total"),
            rebuilds: reg.counter("planner_rebuilds_total"),
            ewma: [
                reg.gauge("planner_ewma_batched_insert_ns_per_edge"),
                reg.gauge("planner_ewma_batched_remove_ns_per_edge"),
                reg.gauge("planner_ewma_recompute_ns_per_unit"),
                reg.gauge("planner_ewma_par_pass_ns_per_edge"),
                reg.gauge("planner_ewma_par_recompute_ns_per_unit"),
                reg.gauge("planner_ewma_pass_ns_per_seed"),
                reg.gauge("planner_ewma_rebuild_ns_per_unit"),
            ],
            last: [0; 7],
        }
    }

    fn observe(&mut self, s: &PlannerStats) {
        let now = [
            s.batched_chosen,
            s.split_chosen,
            s.par_split_chosen,
            s.recompute_chosen,
            s.par_recompute_chosen,
            s.late_recompute,
            s.rebuilds,
        ];
        let counters = [
            &self.batched,
            &self.split,
            &self.par_split,
            &self.recompute,
            &self.par_recompute,
            &self.late_recompute,
            &self.rebuilds,
        ];
        for ((c, &n), last) in counters.iter().zip(&now).zip(&mut self.last) {
            c.add(n.saturating_sub(*last) as u64);
            *last = n;
        }
        let ewma = [
            s.batched_insert_ns_per_edge,
            s.batched_remove_ns_per_edge,
            s.recompute_ns_per_unit,
            s.par_pass_ns_per_edge,
            s.par_recompute_ns_per_unit,
            s.pass_ns_per_seed,
            s.rebuild_ns_per_unit,
        ];
        for (g, v) in self.ewma.iter().zip(ewma) {
            g.set(v);
        }
    }
}

/// The writer's cached metric handles — registered once at spawn so the
/// flush path never touches the registry lock.
struct WriterObs {
    registry: MetricsRegistry,
    spans: SpanRecorder,
    events: Counter,
    batches: Counter,
    epochs: Counter,
    shipped: Counter,
    events_lost: Counter,
    engine_panics: Counter,
    recoveries: Counter,
    recovery_retries: Counter,
    recovery_failures: Counter,
    rung_primary: Counter,
    rung_truncated_tail: Counter,
    rung_older_generation: Counter,
    rung_snapshot_only: Counter,
    rung_genesis_replay: Counter,
    recovery_ns: Histogram,
    health: Gauge,
    stage_dequeue: Histogram,
    stage_apply: Histogram,
    stage_core_drain: Histogram,
    stage_journal_ship: Histogram,
    stage_mirror_sync: Histogram,
    stage_publish: Histogram,
    planner: PlannerObs,
    team_jobs: Gauge,
    team_tasks: Gauge,
    team_workers: Gauge,
    team_busy: Gauge,
}

impl WriterObs {
    /// Registers every writer metric and shares the report's latency
    /// histograms into the registry (same cells — recorded once, read
    /// live from any thread).
    fn new(cfg: &ObsConfig, report: &IngestReport) -> Self {
        let reg = MetricsRegistry::new();
        reg.register_histogram("ingest_batch_apply_ns", &report.batch_apply);
        reg.register_histogram("ingest_publish_ns", &report.publish);
        WriterObs {
            events: reg.counter("ingest_events_total"),
            batches: reg.counter("ingest_batches_total"),
            epochs: reg.counter("ingest_epochs_published_total"),
            shipped: reg.counter("ingest_entries_shipped_total"),
            events_lost: reg.counter("ingest_events_lost_total"),
            engine_panics: reg.counter("ingest_engine_panics_total"),
            recoveries: reg.counter("ingest_recoveries_total"),
            recovery_retries: reg.counter("ingest_recovery_retries_total"),
            recovery_failures: reg.counter("ingest_recovery_failures_total"),
            rung_primary: reg.counter("ingest_recovery_rung_primary_total"),
            rung_truncated_tail: reg.counter("ingest_recovery_rung_truncated_tail_total"),
            rung_older_generation: reg.counter("ingest_recovery_rung_older_generation_total"),
            rung_snapshot_only: reg.counter("ingest_recovery_rung_snapshot_only_total"),
            rung_genesis_replay: reg.counter("ingest_recovery_rung_genesis_replay_total"),
            recovery_ns: reg.histogram("ingest_recovery_ns"),
            health: reg.gauge("ingest_health"),
            stage_dequeue: reg.histogram("ingest_flush_dequeue_ns"),
            stage_apply: reg.histogram("ingest_flush_apply_ns"),
            stage_core_drain: reg.histogram("ingest_flush_core_drain_ns"),
            stage_journal_ship: reg.histogram("ingest_flush_journal_ship_ns"),
            stage_mirror_sync: reg.histogram("ingest_flush_mirror_sync_ns"),
            stage_publish: reg.histogram("ingest_flush_publish_ns"),
            planner: PlannerObs::new(&reg),
            team_jobs: reg.gauge("team_jobs"),
            team_tasks: reg.gauge("team_tasks"),
            team_workers: reg.gauge("team_workers_spawned"),
            team_busy: reg.gauge("team_busy"),
            spans: SpanRecorder::with_capacity(cfg.span_capacity),
            registry: reg,
        }
    }

    fn rung_counter(&self, rung_metric: &str) -> &Counter {
        match rung_metric {
            "primary" => &self.rung_primary,
            "truncated_tail" => &self.rung_truncated_tail,
            "older_generation" => &self.rung_older_generation,
            "snapshot_only" => &self.rung_snapshot_only,
            _ => &self.rung_genesis_replay,
        }
    }
}

/// Stage breakdown returned by [`Writer::sync_mirror`], feeding the
/// `core_drain` and `mirror_sync` spans of the flush trace.
struct MirrorSync {
    drain_start: u64,
    drain_end: u64,
    drained: u64,
    copied: u64,
}

struct Writer<M: IngestEngine> {
    engine: Journaled<M>,
    cfg: IngestConfig,
    sink: Option<JournalSink>,
    pending: Vec<GraphEvent>,
    /// Writer-clock time the current batch opened (first buffered event).
    batch_open_ns: Option<u64>,
    /// Scripted-clock value (scripted mode only).
    now_ns: u64,
    origin: Instant,
    epoch: u64,
    /// Events applied so far (prefix length; journal seqs `0..ops`).
    ops: u64,
    /// `ops` at the last publication (avoid republishing identical state).
    published_ops: u64,
    ship_cursor: u64,
    batches_since_persist: usize,
    subscribers: Vec<mpsc::Sender<Arc<CoreSnapshot>>>,
    /// Copy-on-write mirror of the engine's cores + incremental
    /// histogram — what snapshots are composed from, in O(changed).
    mirror: CoreMirror,
    /// Whether the engine records core changes for us.
    tracking: bool,
    /// Opt-in `deg⁺`/`mcd` mirrors, synced per flush by chunk-compare.
    metrics: Option<MetricMirror>,
    /// Reused drain buffer (no steady-state allocation per flush).
    change_buf: Vec<VertexId>,
    /// Shared with [`IngestService::health`].
    health: Arc<AtomicU8>,
    /// Journal entries whose append failed — retried on later flushes
    /// (the engine applied them; only the ship is outstanding).
    unshipped: Vec<kcore_maint::journal::JournalEntry>,
    /// Consecutive failed ship rounds (append or fsync); escalates to
    /// `Failed` at the recovery policy's `max_attempts`.
    ship_failures: u32,
    /// Journal data appended but its configured fsync still owed.
    sync_pending: bool,
    /// `recover()` attempts in the current incident.
    recovery_attempts: u32,
    /// Writer-clock time the next recovery attempt is due.
    recovery_due_ns: u64,
    /// Clean flushes left before `Degraded` clears to `Healthy`.
    degraded_flushes_left: u32,
    /// Cached metric handles + span ring (None = observability off).
    obs: Option<WriterObs>,
    report: IngestReport,
}

impl<M: IngestEngine> Writer<M> {
    fn now(&self) -> u64 {
        match self.cfg.clock {
            ClockMode::Wall => self.origin.elapsed().as_nanos() as u64,
            ClockMode::Scripted => self.now_ns,
        }
    }

    fn health(&self) -> ServiceHealth {
        ServiceHealth::from_u8(self.health.load(Ordering::Acquire))
    }

    fn set_health(&self, h: ServiceHealth) {
        self.health.store(h as u8, Ordering::Release);
        if let Some(o) = &self.obs {
            o.health.set(h as u8 as f64);
        }
    }

    /// Counts events dropped (panic, recovering-buffer overflow,
    /// `Failed`, or unflushed at teardown) in both the report and the
    /// registry.
    fn lose_events(&mut self, n: u64) {
        self.report.events_lost += n;
        if let Some(o) = &self.obs {
            o.events_lost.add(n);
        }
    }

    /// Exports the engine-side observables that live outside the writer:
    /// planner decision counters + EWMA gauges, and the process-wide
    /// worker-team occupancy gauges. Called once per flush.
    fn export_engine_obs(&mut self) {
        let Some(o) = self.obs.as_mut() else {
            return;
        };
        if let Some(ps) = self.engine.engine().planner_stats() {
            o.planner.observe(ps);
        }
        let ts = kcore_decomp::team::stats();
        o.team_jobs.set(ts.jobs as f64);
        o.team_tasks.set(ts.tasks as f64);
        o.team_workers.set(ts.workers_spawned as f64);
        o.team_busy.set(if ts.busy { 1.0 } else { 0.0 });
    }

    /// `Healthy → Degraded` (never downgrades `Recovering`/`Failed`).
    fn degrade(&mut self) {
        if self.health() == ServiceHealth::Healthy {
            self.set_health(ServiceHealth::Degraded);
            self.degraded_flushes_left = self.healthy_after();
        }
    }

    fn healthy_after(&self) -> u32 {
        self.cfg
            .recovery
            .as_ref()
            .map(|p| p.healthy_after)
            .unwrap_or(2)
            .max(1)
    }

    fn max_io_retries(&self) -> u32 {
        self.cfg
            .recovery
            .as_ref()
            .map(|p| p.max_attempts)
            .unwrap_or(3)
            .max(1)
    }

    /// Cuts a snapshot from the mirror: O(chunks) `Arc` clones for the
    /// cores plus the O(levels) histogram — never an O(n) copy.
    fn compose_snapshot(&self) -> CoreSnapshot {
        let engine = self.engine.engine();
        CoreSnapshot {
            epoch: self.epoch,
            ops: self.ops,
            num_vertices: engine.graph_ref().num_vertices(),
            num_edges: engine.graph_ref().num_edges(),
            cores: self.mirror.snapshot_cores(),
            histogram: self.mirror.histogram(),
            degeneracy: self.mirror.degeneracy(),
            published_at_ns: self.now(),
            metrics: self.metrics.as_ref().map(|m| Arc::new(m.snapshot())),
        }
    }

    /// Brings the mirror up to date with the engine after a flush —
    /// `O(changed)` via the drained change set when tracking is on, or
    /// the chunk-compare fallback (O(n) compare, O(changed) copy, and
    /// untouched chunks keep their snapshot-shared allocation). Returns
    /// the stage breakdown for the flush trace.
    fn sync_mirror(&mut self) -> MirrorSync {
        let n = self.engine.engine().graph_ref().num_vertices();
        if n > self.mirror.len() {
            self.mirror.grow(n);
        }
        let drain_start = self.now();
        let mut buf = std::mem::take(&mut self.change_buf);
        buf.clear();
        let tracked = self.tracking && self.engine.engine_mut().drain_core_changes(&mut buf);
        let drain_end = self.now();
        let drained = buf.len() as u64;
        let mut copied = 0u64;
        if tracked {
            self.report.tracked_drains += 1;
            let engine = self.engine.engine_mut();
            let cores = engine.core_slice();
            for &v in &buf {
                if self.mirror.apply(v, cores[v as usize]) {
                    copied += 1;
                }
            }
        } else {
            self.report.full_syncs += 1;
            let (_, c) = self.mirror.sync_full(self.engine.engine().core_slice());
            copied += c as u64;
        }
        self.change_buf = buf;
        if let Some(metrics) = &mut self.metrics {
            // No change tracking exists for these arrays — always the
            // chunk-compare path; copies still price out as the diff.
            if let Some((dp, mcd)) = self.engine.engine_mut().metric_slices() {
                copied += metrics.sync_full(dp, mcd) as u64;
            }
        }
        self.report.chunks_copied += copied;
        debug_assert!(
            self.mirror.snapshot_cores().to_vec() == self.engine.engine().core_slice(),
            "mirror diverged from the engine"
        );
        MirrorSync {
            drain_start,
            drain_end,
            drained,
            copied,
        }
    }

    fn publish(&mut self, handle: &SnapshotHandle) {
        self.epoch += 1;
        let snap = Arc::new(self.compose_snapshot());
        handle.publish(snap.clone());
        self.subscribers.retain(|s| s.send(snap.clone()).is_ok());
        self.published_ops = self.ops;
        self.report.epochs_published += 1;
        if let Some(o) = &self.obs {
            o.epochs.inc();
        }
    }

    /// Ships everything owed to the journal: queued-from-failure entries
    /// first, then a configured-but-failed fsync. Returns whether the
    /// journal is fully caught up. Failures degrade (entries stay
    /// queued) and escalate to `Failed` after `max_attempts` consecutive
    /// bad rounds — the engine state is fine, but accepting new events
    /// against a journal that stopped growing would turn the next crash
    /// into silent data loss.
    fn ship_owed(&mut self) -> bool {
        let Some(sink) = &mut self.sink else {
            // In-memory mode: entries are dropped by design.
            self.report.entries_shipped += self.unshipped.len() as u64;
            if let Some(o) = &self.obs {
                o.shipped.add(self.unshipped.len() as u64);
            }
            self.unshipped.clear();
            self.sync_pending = false;
            return true;
        };
        if !self.unshipped.is_empty() {
            match sink.append(&self.unshipped) {
                Ok(()) => {
                    self.report.entries_shipped += self.unshipped.len() as u64;
                    if let Some(o) = &self.obs {
                        o.shipped.add(self.unshipped.len() as u64);
                    }
                    self.unshipped.clear();
                    self.sync_pending = false;
                }
                Err(_) => {
                    self.report.journal_ship_failures += 1;
                    self.ship_failures += 1;
                    if self.ship_failures >= self.max_io_retries() {
                        self.set_health(ServiceHealth::Failed);
                    } else {
                        self.degrade();
                    }
                    return false;
                }
            }
        }
        if self.sync_pending {
            match sink.sync() {
                Ok(()) => self.sync_pending = false,
                Err(_) => {
                    self.report.journal_ship_failures += 1;
                    self.ship_failures += 1;
                    if self.ship_failures >= self.max_io_retries() {
                        self.set_health(ServiceHealth::Failed);
                    } else {
                        self.degrade();
                    }
                    return false;
                }
            }
        }
        self.ship_failures = 0;
        true
    }

    /// The engine panicked mid-batch: contain it. The batch (applied or
    /// not, it never reached the journal) is lost; the supervisor either
    /// schedules a `recover()` rebuild or parks in `Failed`.
    fn on_engine_panic(&mut self, lost: u64) {
        self.report.engine_panics += 1;
        if let Some(o) = &self.obs {
            o.engine_panics.inc();
        }
        self.lose_events(lost);
        // Entries recorded against the poisoned engine must never ship.
        let _ = self.engine.drain();
        if self.cfg.recovery.is_some() && self.cfg.durability.is_some() {
            self.set_health(ServiceHealth::Recovering);
            self.recovery_attempts = 0;
            self.recovery_due_ns = self.now(); // first attempt immediate
        } else {
            self.set_health(ServiceHealth::Failed);
        }
    }

    /// One supervised `recover()` attempt. On success the rebuilt engine
    /// is adopted, the recorder/cursors/mirror re-based, the sink
    /// re-opened over the repaired journal, and a fresh (monotone) epoch
    /// published; the service comes back `Degraded` until clean flushes
    /// clear it. On failure the next attempt is scheduled under
    /// exponential backoff until the policy's budget is spent.
    fn try_recover(&mut self, handle: &SnapshotHandle) {
        let (Some(pol), Some(d)) = (self.cfg.recovery.clone(), self.cfg.durability.clone()) else {
            self.set_health(ServiceHealth::Failed);
            return;
        };
        self.recovery_attempts += 1;
        match recover(&d, pol.seed, self.cfg.planner.clone(), pol.replay_batch) {
            Ok(rec) => {
                let next = rec.next_seq;
                let rung = rec.report.rung_metric();
                let recovery_elapsed = rec.report.elapsed_ns;
                if !self.engine.engine_mut().adopt_recovered(rec) {
                    self.report.recovery_failures += 1;
                    if let Some(o) = &self.obs {
                        o.recovery_failures.inc();
                    }
                    self.set_health(ServiceHealth::Failed);
                    return;
                }
                self.engine.resync(next);
                self.ops = next;
                self.ship_cursor = next;
                self.unshipped.clear();
                self.sync_pending = false;
                self.ship_failures = 0;
                self.batches_since_persist = 0;
                // The journal was repaired by recover(); a fresh sink
                // must agree with the recovered seq or something is
                // still wrong on disk.
                let n = self.engine.engine().graph_ref().num_vertices();
                match JournalSink::open(&d.journal_path, n, d.fsync, &d.storage) {
                    Ok(sink) if sink.existing() == next => self.sink = Some(sink),
                    _ => {
                        self.report.recovery_failures += 1;
                        if let Some(o) = &self.obs {
                            o.recovery_failures.inc();
                        }
                        self.set_health(ServiceHealth::Failed);
                        return;
                    }
                }
                // Re-arm tracking and the mirror on the rebuilt engine.
                self.tracking = self.engine.engine_mut().enable_core_change_tracking();
                self.change_buf.clear();
                let _ = self
                    .engine
                    .engine_mut()
                    .drain_core_changes(&mut self.change_buf);
                self.change_buf.clear();
                if n > self.mirror.len() {
                    self.mirror.grow(n);
                }
                let (_, copied) = self.mirror.sync_full(self.engine.engine().core_slice());
                self.report.chunks_copied += copied as u64;
                self.report.full_syncs += 1;
                self.publish(handle);
                self.report.recoveries += 1;
                if let Some(o) = &self.obs {
                    o.recoveries.inc();
                    o.rung_counter(rung).inc();
                    o.recovery_ns.record(recovery_elapsed);
                }
                self.degraded_flushes_left = pol.healthy_after.max(1);
                self.set_health(ServiceHealth::Degraded);
            }
            Err(_) if self.recovery_attempts < pol.max_attempts => {
                self.report.recovery_retries += 1;
                if let Some(o) = &self.obs {
                    o.recovery_retries.inc();
                }
                let delay = pol.backoff_base_ns.saturating_mul(
                    (pol.backoff_factor.max(1) as u64)
                        .saturating_pow(self.recovery_attempts.saturating_sub(1)),
                );
                self.recovery_due_ns = self.now().saturating_add(delay.max(1));
            }
            Err(_) => {
                self.report.recovery_failures += 1;
                if let Some(o) = &self.obs {
                    o.recovery_failures.inc();
                }
                self.set_health(ServiceHealth::Failed);
            }
        }
    }

    /// Applies the pending micro-batch under `catch_unwind`, ships the
    /// journal tail, and publishes per the cadence. The engine's batch
    /// entry points see maximal same-kind runs (a micro-batch is at most
    /// `max_batch` events, so `replay_batched` groups each run into one
    /// call).
    fn flush(&mut self, handle: &SnapshotHandle) {
        match self.health() {
            ServiceHealth::Recovering | ServiceHealth::Failed => return,
            _ => {}
        }
        // Journal debt from earlier failed rounds goes first: entries
        // must land in seq order, and escalation to `Failed` must stop
        // new batches from widening the gap.
        if !self.ship_owed() {
            return;
        }
        if self.pending.is_empty() {
            return;
        }
        // Flush number doubles as the trace id: every stage span of this
        // flush carries it, so the trace can be reassembled from the ring.
        let trace = self.report.batches + 1;
        let open_ns = self.batch_open_ns.take().unwrap_or_else(|| self.now());
        let t0 = self.now();
        let batch_len = self.pending.len() as u64;
        let applied = catch_unwind(AssertUnwindSafe(|| {
            replay_batched(
                &mut self.engine,
                self.pending.drain(..),
                self.cfg.max_batch.max(1),
            )
        }));
        let stats = match applied {
            Ok(stats) => stats,
            Err(_) => {
                self.on_engine_panic(batch_len);
                return;
            }
        };
        self.ops = self.engine.next_seq();
        self.report.update_stats.absorb(stats);
        self.report.batches += 1;
        let apply_end = self.now();
        let apply_ns = apply_end.saturating_sub(t0);
        self.report.batch_apply.record(apply_ns);

        // Ship the journal tail (incremental cursor: each entry exactly
        // once). Without a sink the entries are dropped — the recorder
        // is still what assigns seqs, so `ops` stays exact. A failed
        // append keeps the entries queued for the next round instead of
        // killing the writer.
        let mut tail = self.engine.drain_since(self.ship_cursor);
        let tail_len = tail.len() as u64;
        self.ship_cursor = self.engine.next_seq();
        self.unshipped.append(&mut tail);
        if self.sink.is_some() && self.cfg.durability.as_ref().is_some_and(|d| d.fsync) {
            self.sync_pending = true;
        }
        let shipped = self.ship_owed();
        let ship_end = self.now();

        // Snapshot maintenance: sync the mirror every flush (the change
        // log must be drained even on non-publishing batches) and
        // publish per the cadence. Timed on the wall clock even in
        // scripted mode — publish cost is a real-machine metric, and
        // reading `Instant` does not perturb scripted determinism.
        let p0 = Instant::now();
        let sync = self.sync_mirror();
        let sync_end = self.now();
        let ops_at_last_publish = self.published_ops;
        let published = self
            .report
            .batches
            .is_multiple_of(self.cfg.publish_every_batches.max(1) as u64);
        if published {
            self.publish(handle);
        }
        let publish_ns = p0.elapsed().as_nanos() as u64;
        self.report.publish.record(publish_ns);

        if let Some(o) = &self.obs {
            o.batches.inc();
            let pub_end = self.now();
            let published_items = if published {
                self.ops.saturating_sub(ops_at_last_publish)
            } else {
                0
            };
            // Stage breakdown, recorded in pipeline order: queue wait,
            // engine apply, core-change drain, journal append/ship,
            // mirror sync, COW publish. Spans carry writer-clock
            // timestamps, so a scripted run yields a bit-exact trace.
            let stages = [
                ("dequeue", open_ns, t0.saturating_sub(open_ns), batch_len),
                ("apply", t0, apply_ns, batch_len),
                (
                    "core_drain",
                    sync.drain_start,
                    sync.drain_end.saturating_sub(sync.drain_start),
                    sync.drained,
                ),
                (
                    "journal_ship",
                    apply_end,
                    ship_end.saturating_sub(apply_end),
                    tail_len,
                ),
                (
                    "mirror_sync",
                    sync.drain_end,
                    sync_end.saturating_sub(sync.drain_end),
                    sync.copied,
                ),
                (
                    "publish",
                    sync_end,
                    pub_end.saturating_sub(sync_end),
                    published_items,
                ),
            ];
            let hists = [
                &o.stage_dequeue,
                &o.stage_apply,
                &o.stage_core_drain,
                &o.stage_journal_ship,
                &o.stage_mirror_sync,
                &o.stage_publish,
            ];
            for (hist, &(stage, start, dur, items)) in hists.iter().zip(&stages) {
                hist.record(dur);
                o.spans.record(trace, stage, start, dur, items);
            }
        }
        self.export_engine_obs();
        self.batches_since_persist += 1;
        if let Some(d) = &self.cfg.durability {
            if d.snapshot_every_batches > 0
                && self.batches_since_persist >= d.snapshot_every_batches
            {
                self.persist();
            }
        }
        // A fully clean flush works a degraded service back to healthy.
        if shipped && self.health() == ServiceHealth::Degraded {
            self.degraded_flushes_left = self.degraded_flushes_left.saturating_sub(1);
            if self.degraded_flushes_left == 0 {
                self.set_health(ServiceHealth::Healthy);
            }
        }
    }

    /// Persists the index snapshot into the rotation. Failures are
    /// contained: the journal still carries every event, so a missed
    /// checkpoint only makes a future recovery replay more — the
    /// service degrades instead of dying.
    fn persist(&mut self) {
        let Some(d) = self.cfg.durability.clone() else {
            return;
        };
        let ops = self.ops;
        let mut payload: Vec<u8> = Vec::new();
        let result = self
            .engine
            .engine_mut()
            .persist_index(&mut payload)
            .and_then(|_| persist_index_snapshot(&d, ops, &payload));
        self.batches_since_persist = 0;
        match result {
            Ok(()) => self.report.snapshots_persisted += 1,
            Err(_) => {
                self.report.checkpoint_failures += 1;
                self.degrade();
            }
        }
    }

    fn deadline(&self) -> Option<u64> {
        match (self.batch_open_ns, self.cfg.flush_interval_ns) {
            (Some(open), interval) if interval != u64::MAX => Some(open.saturating_add(interval)),
            _ => None,
        }
    }

    fn recovering_buffer_cap(&self) -> usize {
        self.cfg.queue_capacity.max(self.cfg.max_batch).max(1) * RECOVERING_BUFFER_FACTOR
    }

    fn run(mut self, rx: Receiver<Msg>, handle: SnapshotHandle) -> (IngestReport, Journaled<M>) {
        loop {
            // Deadline-driven work first: a due recovery attempt, or an
            // interval flush of the oldest buffered event.
            if self.health() == ServiceHealth::Recovering {
                if self.now() >= self.recovery_due_ns {
                    self.try_recover(&handle);
                    if self.health() != ServiceHealth::Recovering
                        && self.pending.len() >= self.cfg.max_batch.max(1)
                    {
                        // Events buffered through the outage flush as
                        // soon as the engine is back.
                        self.flush(&handle);
                    }
                }
            } else if let Some(deadline) = self.deadline() {
                if self.now() >= deadline {
                    self.flush(&handle);
                }
            }
            // Wall mode parks until the nearest deadline (flush interval
            // or recovery backoff); scripted mode blocks indefinitely
            // (time only moves via Tick messages).
            let wake = if self.health() == ServiceHealth::Recovering {
                Some(self.recovery_due_ns)
            } else {
                self.deadline()
            };
            let msg = match (self.cfg.clock, wake) {
                (ClockMode::Wall, Some(deadline)) => {
                    let now = self.now();
                    let wait = Duration::from_nanos(deadline.saturating_sub(now).max(1));
                    match rx.recv_timeout(wait) {
                        Ok(m) => m,
                        Err(mpsc::RecvTimeoutError::Timeout) => continue,
                        Err(mpsc::RecvTimeoutError::Disconnected) => break,
                    }
                }
                _ => match rx.recv() {
                    Ok(m) => m,
                    Err(_) => break, // all handles gone: graceful drain
                },
            };
            match msg {
                Msg::Event(e) => {
                    self.report.events += 1;
                    if let Some(o) = &self.obs {
                        o.events.inc();
                    }
                    match self.health() {
                        ServiceHealth::Failed => {
                            self.lose_events(1);
                        }
                        ServiceHealth::Recovering => {
                            // Buffer through the outage (bounded).
                            if self.pending.len() >= self.recovering_buffer_cap() {
                                self.lose_events(1);
                            } else {
                                if self.pending.is_empty() {
                                    self.batch_open_ns = Some(self.now());
                                }
                                self.pending.push(e);
                            }
                        }
                        _ => {
                            if self.pending.is_empty() {
                                self.batch_open_ns = Some(self.now());
                            }
                            self.pending.push(e);
                            if self.pending.len() >= self.cfg.max_batch.max(1) {
                                self.flush(&handle);
                            }
                        }
                    }
                }
                Msg::Tick(t) => {
                    // Deadlines (flush interval, recovery backoff) are
                    // re-checked at the top of the loop.
                    self.now_ns = self.now_ns.max(t);
                }
                Msg::Flush(ack) => {
                    if self.health() == ServiceHealth::Recovering
                        && self.now() >= self.recovery_due_ns
                    {
                        self.try_recover(&handle);
                    }
                    self.flush(&handle);
                    if self.published_ops != self.ops {
                        self.publish(&handle);
                    }
                    let _ = ack.send(handle.load());
                }
                Msg::Subscribe(tx) => self.subscribers.push(tx),
                Msg::Pause(ack, release) => {
                    let _ = ack.send(());
                    // Parked until the guard drops (sender disconnect).
                    let _ = release.recv();
                }
                Msg::Shutdown { graceful } => {
                    if !graceful {
                        // Crash simulation: pending events and the final
                        // persist are lost, shipped journal survives.
                        self.report.mirror_chunks = self.mirror.num_chunks() as u64;
                        self.report.final_health = self.health();
                        return (self.report, self.engine);
                    }
                    break;
                }
            }
        }
        // Graceful exit: one last recovery attempt if one was in flight
        // (ignoring backoff — there is no later), then flush what's
        // buffered, publish the final state, persist a last snapshot
        // when durability is on. A `Failed` writer skips the flush and
        // persist: its engine state is not trustworthy, and a checkpoint
        // of it would poison the recovery ladder's newest rung.
        if self.health() == ServiceHealth::Recovering {
            self.try_recover(&handle);
        }
        match self.health() {
            ServiceHealth::Recovering | ServiceHealth::Failed => {
                let lost = self.pending.len() as u64;
                self.lose_events(lost);
                self.pending.clear();
                self.set_health(ServiceHealth::Failed);
            }
            _ => {
                self.flush(&handle);
                if self.published_ops != self.ops {
                    self.publish(&handle);
                }
                if self.cfg.durability.is_some()
                    && !matches!(
                        self.health(),
                        ServiceHealth::Recovering | ServiceHealth::Failed
                    )
                {
                    self.persist();
                }
            }
        }
        self.report.mirror_chunks = self.mirror.num_chunks() as u64;
        self.report.final_health = self.health();
        (self.report, self.engine)
    }
}
