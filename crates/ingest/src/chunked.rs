//! Chunked persistent core array — the copy-on-write storage behind
//! O(changed) snapshot publication.
//!
//! A [`ChunkedCores`] stores core numbers in fixed-size
//! `Arc<[u32; CHUNK]>` chunks. Cloning the whole array is `O(chunks)`
//! reference-count bumps; writing through [`ChunkedCores::set`] clones
//! **only** the chunk it lands in (and only when that chunk is still
//! shared with an older snapshot — `Arc::make_mut`). A flush that
//! changes `c` vertices therefore publishes a snapshot for the price of
//! at most `min(c, touched chunks)` 4 KiB chunk copies plus one vector
//! of `Arc` clones, instead of the old `O(n)` full-vector rebuild.
//!
//! [`CoreMirror`] is the writer-side companion: the same chunked array
//! plus an incrementally maintained per-level histogram, fed either by
//! the engine's drained change set (`O(changed)`) or by a chunk-compare
//! fallback ([`CoreMirror::sync_full`]) that still preserves sharing
//! for untouched chunks.
//!
//! Invariant throughout: slots past `len` inside the last chunk are
//! zero, so chunk-granular equality (and the shared all-zero chunk used
//! for growth) never needs a length-aware compare.

use kcore_graph::VertexId;
use std::sync::{Arc, OnceLock};

/// Core numbers per chunk: 1024 × `u32` = one 4 KiB page. Small enough
/// that a localised batch dirties few pages, large enough that the
/// per-chunk `Arc` overhead (16 bytes + refcounts) is noise — see the
/// README's "Snapshot publication & memory layout" section.
pub const CHUNK: usize = 1024;

fn zero_chunk() -> Arc<[u32; CHUNK]> {
    static ZERO: OnceLock<Arc<[u32; CHUNK]>> = OnceLock::new();
    ZERO.get_or_init(|| Arc::new([0u32; CHUNK])).clone()
}

/// A persistent (copy-on-write) `u32` array in `Arc`-shared chunks.
#[derive(Debug, Clone, Default)]
pub struct ChunkedCores {
    len: usize,
    chunks: Vec<Arc<[u32; CHUNK]>>,
}

impl ChunkedCores {
    /// Builds from a flat slice (fresh chunks, no sharing).
    pub fn from_slice(values: &[u32]) -> Self {
        let mut chunks = Vec::with_capacity(values.len().div_ceil(CHUNK));
        for block in values.chunks(CHUNK) {
            if block.iter().all(|&x| x == 0) {
                chunks.push(zero_chunk());
            } else {
                let mut arr = [0u32; CHUNK];
                arr[..block.len()].copy_from_slice(block);
                chunks.push(Arc::new(arr));
            }
        }
        ChunkedCores {
            len: values.len(),
            chunks,
        }
    }

    /// Logical length.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of backing chunks.
    #[inline]
    pub fn num_chunks(&self) -> usize {
        self.chunks.len()
    }

    /// Element `i`.
    #[inline]
    pub fn get(&self, i: usize) -> u32 {
        debug_assert!(i < self.len);
        self.chunks[i / CHUNK][i % CHUNK]
    }

    /// Writes element `i`, cloning the containing chunk first if it is
    /// shared with another `ChunkedCores`. Returns `true` when a clone
    /// (an actual copy-on-write) happened.
    #[inline]
    pub fn set(&mut self, i: usize, value: u32) -> bool {
        debug_assert!(i < self.len);
        let chunk = &mut self.chunks[i / CHUNK];
        let copied = Arc::strong_count(chunk) > 1;
        Arc::make_mut(chunk)[i % CHUNK] = value;
        copied
    }

    /// Extends to `new_len` with zeros. New whole chunks alias one
    /// static all-zero chunk until first written.
    pub fn grow(&mut self, new_len: usize) {
        assert!(new_len >= self.len, "ChunkedCores never shrinks");
        while self.chunks.len() * CHUNK < new_len {
            self.chunks.push(zero_chunk());
        }
        // Slots between the old and new length inside existing chunks
        // are already zero by the padding invariant.
        self.len = new_len;
    }

    /// Iterates the elements in order.
    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        self.chunks
            .iter()
            .flat_map(|c| c.iter().copied())
            .take(self.len)
    }

    /// Flattens into a `Vec` (tests / oracle comparisons).
    pub fn to_vec(&self) -> Vec<u32> {
        let mut out = Vec::with_capacity(self.len);
        out.extend(self.iter());
        out
    }

    /// `true` iff chunk `ci` is the same allocation in both arrays —
    /// the sharing probe the COW unit tests assert with.
    pub fn chunk_ptr_eq(&self, other: &ChunkedCores, ci: usize) -> bool {
        match (self.chunks.get(ci), other.chunks.get(ci)) {
            (Some(a), Some(b)) => Arc::ptr_eq(a, b),
            _ => false,
        }
    }

    /// How many chunk allocations the two arrays share.
    pub fn shared_chunks(&self, other: &ChunkedCores) -> usize {
        self.chunks
            .iter()
            .zip(&other.chunks)
            .filter(|(a, b)| Arc::ptr_eq(a, b))
            .count()
    }
}

impl PartialEq for ChunkedCores {
    fn eq(&self, other: &Self) -> bool {
        if self.len != other.len {
            return false;
        }
        // Pointer-equal chunks (the common case across epochs) compare
        // for free; padding past `len` is zero on both sides, so whole
        // chunks compare without a length-aware tail case.
        self.chunks
            .iter()
            .zip(&other.chunks)
            .all(|(a, b)| Arc::ptr_eq(a, b) || a == b)
    }
}

impl Eq for ChunkedCores {}

/// The writer's live mirror of the engine's core numbers: a
/// [`ChunkedCores`] plus the per-level histogram, both maintained
/// incrementally from core deltas so composing a snapshot never rescans
/// all `n` vertices.
#[derive(Debug, Clone)]
pub struct CoreMirror {
    cores: ChunkedCores,
    /// `counts[k]` = vertices with core exactly `k`; may carry zero
    /// tail levels (a dismissal can empty the top level) — the
    /// histogram accessor truncates at the degeneracy.
    counts: Vec<usize>,
}

impl CoreMirror {
    /// Builds from the engine's current cores (`O(n)`, once at spawn).
    pub fn from_slice(cores: &[u32]) -> Self {
        let max = cores.iter().copied().max().unwrap_or(0) as usize;
        let mut counts = vec![0usize; max + 1];
        for &c in cores {
            counts[c as usize] += 1;
        }
        CoreMirror {
            cores: ChunkedCores::from_slice(cores),
            counts,
        }
    }

    /// Logical length.
    #[inline]
    pub fn len(&self) -> usize {
        self.cores.len()
    }

    /// `true` when empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.cores.is_empty()
    }

    /// Extends with core-0 vertices.
    pub fn grow(&mut self, new_len: usize) {
        let added = new_len - self.cores.len();
        self.cores.grow(new_len);
        self.counts[0] += added;
    }

    /// Applies one vertex's (possibly unchanged) core value; returns
    /// `true` when a chunk was copy-on-written.
    #[inline]
    pub fn apply(&mut self, v: VertexId, new_core: u32) -> bool {
        let old = self.cores.get(v as usize);
        if old == new_core {
            return false;
        }
        self.counts[old as usize] -= 1;
        let k = new_core as usize;
        if self.counts.len() <= k {
            self.counts.resize(k + 1, 0);
        }
        self.counts[k] += 1;
        self.cores.set(v as usize, new_core)
    }

    /// Fallback sync against the engine's full core slice: an `O(n)`
    /// *compare* but an `O(changed)` *copy* — unchanged chunks keep
    /// their shared allocation. Returns `(elements changed, chunks
    /// copied)`.
    pub fn sync_full(&mut self, new: &[u32]) -> (usize, usize) {
        assert_eq!(new.len(), self.cores.len, "grow before syncing");
        let mut changed = 0usize;
        let mut copied = 0usize;
        for ci in 0..self.cores.chunks.len() {
            let start = ci * CHUNK;
            let end = (start + CHUNK).min(new.len());
            if start >= end {
                break;
            }
            let fresh = &new[start..end];
            let stale = &self.cores.chunks[ci][..fresh.len()];
            if stale == fresh {
                continue;
            }
            for (&o, &n) in stale.iter().zip(fresh) {
                if o != n {
                    changed += 1;
                    self.counts[o as usize] -= 1;
                    let k = n as usize;
                    if self.counts.len() <= k {
                        self.counts.resize(k + 1, 0);
                    }
                    self.counts[k] += 1;
                }
            }
            let chunk = &mut self.cores.chunks[ci];
            if Arc::strong_count(chunk) > 1 {
                copied += 1;
            }
            Arc::make_mut(chunk)[..fresh.len()].copy_from_slice(fresh);
        }
        (changed, copied)
    }

    /// A publishable clone of the cores (`O(chunks)` `Arc` bumps).
    pub fn snapshot_cores(&self) -> ChunkedCores {
        self.cores.clone()
    }

    /// Largest `k` with a non-empty `k`-core.
    pub fn degeneracy(&self) -> u32 {
        self.counts.iter().rposition(|&c| c > 0).unwrap_or(0) as u32
    }

    /// `hist[k]` = vertices with core exactly `k`, truncated at the
    /// degeneracy (`hist.len() == degeneracy + 1`).
    pub fn histogram(&self) -> Vec<usize> {
        self.counts[..=self.degeneracy() as usize].to_vec()
    }

    /// Total backing chunks (for the publish-cost report).
    pub fn num_chunks(&self) -> usize {
        self.cores.num_chunks()
    }
}

/// A published, immutable view of the order-index maintenance metrics:
/// the `deg⁺` and `mcd` arrays of the source paper, chunk-shared with
/// the writer's [`MetricMirror`] exactly like cores are.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoreMetrics {
    /// `deg⁺(v)`: neighbours after `v` in the k-order with equal-or-
    /// higher core (the promotion-pass budget).
    pub deg_plus: ChunkedCores,
    /// `mcd(v)`: neighbours with core `>= core(v)` (the Lemma 5.2
    /// short-circuit bound).
    pub mcd: ChunkedCores,
}

/// Writer-side chunked-COW mirrors of `deg⁺` and `mcd` — the same trick
/// [`CoreMirror`] plays for cores, so cross-epoch readers (the sharded
/// boundary-table repair among them) see the metrics snapshot-visible
/// without an `O(n)` copy per epoch: untouched chunks stay shared
/// between consecutive snapshots.
///
/// The engines expose no change tracking for these arrays, so syncing
/// is always the chunk-compare fallback: `O(n)` compare, `O(changed)`
/// copy.
#[derive(Debug, Clone)]
pub struct MetricMirror {
    deg_plus: ChunkedCores,
    mcd: ChunkedCores,
}

/// Chunk-compare sync shared by both metric arrays: equal chunks keep
/// their (possibly snapshot-shared) allocation, differing ones are
/// rewritten via `Arc::make_mut`. Returns chunks copied (COW breaks).
fn sync_chunked(dst: &mut ChunkedCores, new: &[u32]) -> usize {
    if new.len() > dst.len() {
        dst.grow(new.len());
    }
    assert_eq!(new.len(), dst.len, "metric arrays never shrink");
    let mut copied = 0usize;
    for ci in 0..dst.chunks.len() {
        let start = ci * CHUNK;
        let end = (start + CHUNK).min(new.len());
        if start >= end {
            break;
        }
        let fresh = &new[start..end];
        let chunk = &mut dst.chunks[ci];
        if &chunk[..fresh.len()] == fresh {
            continue;
        }
        if Arc::strong_count(chunk) > 1 {
            copied += 1;
        }
        Arc::make_mut(chunk)[..fresh.len()].copy_from_slice(fresh);
    }
    copied
}

impl MetricMirror {
    /// Builds from the engine's current arrays (`O(n)`, once at spawn).
    pub fn from_slices(deg_plus: &[u32], mcd: &[u32]) -> Self {
        assert_eq!(deg_plus.len(), mcd.len());
        MetricMirror {
            deg_plus: ChunkedCores::from_slice(deg_plus),
            mcd: ChunkedCores::from_slice(mcd),
        }
    }

    /// Vertices covered.
    pub fn len(&self) -> usize {
        self.deg_plus.len()
    }

    /// True when no vertex is covered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Brings both mirrors up to date; returns chunks copied (the COW
    /// publish cost, reported alongside the core mirror's).
    pub fn sync_full(&mut self, deg_plus: &[u32], mcd: &[u32]) -> usize {
        sync_chunked(&mut self.deg_plus, deg_plus) + sync_chunked(&mut self.mcd, mcd)
    }

    /// A publishable view (`O(chunks)` `Arc` bumps, no value copies).
    pub fn snapshot(&self) -> CoreMetrics {
        CoreMetrics {
            deg_plus: self.deg_plus.clone(),
            mcd: self.mcd.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_slice_roundtrip() {
        for n in [0usize, 1, CHUNK - 1, CHUNK, CHUNK + 1, 3 * CHUNK + 17] {
            let vals: Vec<u32> = (0..n as u32).map(|i| i % 7).collect();
            let cc = ChunkedCores::from_slice(&vals);
            assert_eq!(cc.len(), n);
            assert_eq!(cc.to_vec(), vals);
            assert_eq!(cc.num_chunks(), n.div_ceil(CHUNK));
            for (i, &v) in vals.iter().enumerate() {
                assert_eq!(cc.get(i), v);
            }
        }
    }

    #[test]
    fn set_copies_only_shared_chunks() {
        let vals = vec![1u32; 2 * CHUNK + 10];
        let mut a = ChunkedCores::from_slice(&vals);
        let b = a.clone();
        assert_eq!(a.shared_chunks(&b), 3);

        // Writing into chunk 0 of `a` must unshare exactly chunk 0.
        assert!(a.set(5, 42), "shared chunk must be copied");
        assert!(!a.set(6, 43), "second write hits the now-unique chunk");
        assert!(!a.chunk_ptr_eq(&b, 0));
        assert!(a.chunk_ptr_eq(&b, 1));
        assert!(a.chunk_ptr_eq(&b, 2));
        assert_eq!(a.shared_chunks(&b), 2);

        // b is untouched (persistence), a sees the writes.
        assert_eq!(b.get(5), 1);
        assert_eq!(a.get(5), 42);
        assert_eq!(a.get(6), 43);
        assert_ne!(a, b);
    }

    #[test]
    fn equality_uses_values_not_pointers() {
        let vals: Vec<u32> = (0..CHUNK as u32 + 100).collect();
        let a = ChunkedCores::from_slice(&vals);
        let mut b = ChunkedCores::from_slice(&vals);
        assert_eq!(a, b);
        b.set(3, 999);
        assert_ne!(a, b);
        b.set(3, 3);
        assert_eq!(
            a, b,
            "restored value => equal again despite distinct chunks"
        );
    }

    #[test]
    fn grow_shares_the_zero_chunk() {
        let mut a = ChunkedCores::from_slice(&[]);
        a.grow(3 * CHUNK);
        let b = a.clone();
        assert_eq!(a.shared_chunks(&b), 3);
        assert_eq!(a.get(3 * CHUNK - 1), 0);
        // All-zero chunks also alias each other via the static chunk.
        assert!(a.chunk_ptr_eq(&a.clone(), 0));

        // Growth into a partial chunk keeps the padding-zero invariant.
        let mut c = ChunkedCores::from_slice(&[7; 10]);
        c.grow(20);
        assert_eq!(c.len(), 20);
        assert_eq!(c.get(15), 0);
    }

    #[test]
    fn mirror_tracks_histogram_and_degeneracy() {
        let mut m = CoreMirror::from_slice(&[0, 1, 1, 2]);
        assert_eq!(m.histogram(), vec![1, 2, 1]);
        assert_eq!(m.degeneracy(), 2);

        m.apply(0, 5);
        assert_eq!(m.degeneracy(), 5);
        assert_eq!(m.histogram(), vec![0, 2, 1, 0, 0, 1]);

        m.apply(0, 0);
        assert_eq!(m.degeneracy(), 2, "emptied top levels are truncated");
        assert_eq!(m.histogram(), vec![1, 2, 1]);

        m.grow(6);
        assert_eq!(m.len(), 6);
        assert_eq!(m.histogram(), vec![3, 2, 1]);
        let total: usize = m.histogram().iter().sum();
        assert_eq!(total, 6);
    }

    #[test]
    fn mirror_sync_full_preserves_sharing() {
        let vals = vec![2u32; 4 * CHUNK];
        let mut m = CoreMirror::from_slice(&vals);
        let before = m.snapshot_cores();

        // Change one vertex in chunk 2 via the fallback path.
        let mut new = vals.clone();
        new[2 * CHUNK + 7] = 9;
        let (changed, copied) = m.sync_full(&new);
        assert_eq!(changed, 1);
        assert_eq!(copied, 1, "only the dirtied chunk is copied");
        let after = m.snapshot_cores();
        assert_eq!(after.shared_chunks(&before), 3);
        assert_eq!(after.to_vec(), new);
        assert_eq!(m.histogram(), {
            let mut h = vec![0usize; 10];
            h[2] = 4 * CHUNK - 1;
            h[9] = 1;
            h
        });

        // No-op sync copies nothing.
        let (changed, copied) = m.sync_full(&new);
        assert_eq!((changed, copied), (0, 0));
    }

    #[test]
    fn mirror_apply_reports_cow() {
        let mut m = CoreMirror::from_slice(&[1; 100]);
        let snap = m.snapshot_cores();
        assert!(m.apply(4, 3), "chunk shared with snapshot => copy");
        assert!(!m.apply(5, 3), "now unique => in-place");
        assert!(!m.apply(6, 1), "unchanged value is free");
        assert_eq!(snap.get(4), 1);
        let _ = snap;
    }

    #[test]
    fn metric_mirror_shares_untouched_chunks() {
        let n = 3 * CHUNK + 5;
        let dp: Vec<u32> = (0..n as u32).map(|i| i % 5).collect();
        let mcd: Vec<u32> = (0..n as u32).map(|i| i % 3).collect();
        let mut m = MetricMirror::from_slices(&dp, &mcd);
        let before = m.snapshot();

        // Change one value in chunk 1 of deg_plus only.
        let mut dp2 = dp.clone();
        dp2[CHUNK + 3] = 99;
        let copied = m.sync_full(&dp2, &mcd);
        assert_eq!(copied, 1, "exactly one chunk diverged");
        let after = m.snapshot();
        assert_eq!(after.deg_plus.to_vec(), dp2);
        assert_eq!(after.mcd.to_vec(), mcd);
        // Untouched chunks are shared across epochs; the dirty one is not.
        assert!(!before.deg_plus.chunk_ptr_eq(&after.deg_plus, 1));
        assert!(before.deg_plus.chunk_ptr_eq(&after.deg_plus, 0));
        assert!(before.deg_plus.chunk_ptr_eq(&after.deg_plus, 2));
        assert!(before.mcd.chunk_ptr_eq(&after.mcd, 0));

        // No-op sync is free.
        assert_eq!(m.sync_full(&dp2, &mcd), 0);

        // Growth zero-fills and stays consistent.
        let mut dp3 = dp2.clone();
        let mut mcd3 = mcd.clone();
        dp3.resize(n + CHUNK, 7);
        mcd3.resize(n + CHUNK, 2);
        m.sync_full(&dp3, &mcd3);
        assert_eq!(m.len(), n + CHUNK);
        assert_eq!(m.snapshot().deg_plus.to_vec(), dp3);
        assert_eq!(m.snapshot().mcd.to_vec(), mcd3);
    }
}
