//! Road-network resilience: simulate road closures (edge removals) on a
//! grid-like road network and watch how the 2-core — the redundantly
//! connected part of the network, where traffic can always be re-routed —
//! erodes. Uses the removal path (`OrderRemoval`) almost exclusively,
//! the regime where the paper shows the traversal algorithm pays for its
//! `pcd` maintenance while the order-based index does not.
//!
//! Run with: `cargo run --release --example road_network_resilience`

use kcore::gen::{load_dataset, sample_edges, Scale};
use kcore::{CoreMaintainer, OrderCore, TraversalCore};
use std::time::Instant;

fn main() {
    let ds = load_dataset("ca", Scale::Small, 10);
    let road = ds.full_graph();
    println!(
        "road network: {} junctions, {} segments",
        road.num_vertices(),
        road.num_edges()
    );

    let closures = sample_edges(&road, 4000, 2024);
    let mut order = OrderCore::new(road.clone(), 1);
    let mut trav = TraversalCore::new(road.clone(), 2);

    let redundant_before = count_core(&order, 2);
    println!("junctions with redundant routing (2-core): {redundant_before}");

    let t0 = Instant::now();
    let mut degraded = 0usize;
    for &(u, v) in &closures {
        let s = order.remove_edge(u, v).unwrap();
        degraded += s.changed;
    }
    let order_time = t0.elapsed();

    let t1 = Instant::now();
    for &(u, v) in &closures {
        trav.remove(u, v).unwrap();
    }
    let trav_time = t1.elapsed();
    assert_eq!(order.cores(), trav.core_slice());

    let redundant_after = count_core(&order, 2);
    println!(
        "after {} closures: 2-core shrank {} -> {} ({} junctions lost redundancy)",
        closures.len(),
        redundant_before,
        redundant_after,
        degraded
    );
    println!(
        "maintenance time: order-based {order_time:?}, traversal {trav_time:?} \
         (road networks are the one family where Trav-2 keeps up — paper Table II)"
    );

    // Re-open the roads in reverse order; the network must recover
    // exactly.
    for &(u, v) in closures.iter().rev() {
        order.insert_edge(u, v).unwrap();
    }
    assert_eq!(count_core(&order, 2), redundant_before);
    println!("re-opening all closures restores the 2-core exactly");
}

fn count_core(engine: &OrderCore, k: u32) -> usize {
    engine.cores().iter().filter(|&&c| c >= k).count()
}
