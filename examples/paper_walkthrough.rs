//! A guided tour of the paper on its own running example (Fig 3):
//! reproduces, step by step and with printed narration, Examples 3.1,
//! 4.1, 4.2, 5.1 and 5.2, contrasting all four maintenance strategies on
//! the same update.
//!
//! Run with: `cargo run --release --example paper_walkthrough`

use kcore::decomp::regions::subcore_sizes;
use kcore::decomp::validate::{compute_mcd, compute_pcd};
use kcore::graph::fixtures::PaperGraph;
use kcore::{
    core_decomposition, CoreMaintainer, OrderCore, RecomputeCore, SubCoreAlgo, TraversalCore,
};

fn main() {
    let pg = PaperGraph::full();
    let g = &pg.graph;
    println!(
        "Fig 3 graph: {} vertices, {} edges",
        g.num_vertices(),
        g.num_edges()
    );

    // ---- Example 3.1: cores and subcores ----
    let core = core_decomposition(g);
    println!("\n== Example 3.1 ==");
    println!(
        "core(u_i) = {}, core(v1..v5) = {}, core(v6..v13) = {}",
        core[pg.u(0) as usize],
        core[pg.v(1) as usize],
        core[pg.v(6) as usize]
    );
    let sc = subcore_sizes(g, &core);
    println!(
        "subcores: |sc(u)| = {} (the chains), |sc(v1)| = {}, |sc(v6)| = {} and |sc(v10)| = {}",
        sc[pg.u(0) as usize],
        sc[pg.v(1) as usize],
        sc[pg.v(6) as usize],
        sc[pg.v(10) as usize]
    );

    // ---- Example 4.1: why mcd and pcd prune ----
    println!("\n== Example 4.1 (after inserting (v4, u0)) ==");
    let mut g_ins = g.clone();
    g_ins.insert_edge(pg.v(4), pg.u(0)).unwrap();
    let mcd = compute_mcd(&g_ins, &core);
    let pcd = compute_pcd(&g_ins, &core, &mcd);
    println!(
        "mcd(u0) = pcd(u0) = {}; mcd(u1999) = {} (< 2: pruned by mcd); \
         mcd(u1997) = {} but pcd(u1997) = {} (pruned only by pcd)",
        mcd[pg.u(0) as usize],
        mcd[pg.u(1999) as usize],
        mcd[pg.u(1997) as usize],
        pcd[pg.u(1997) as usize]
    );

    // ---- Examples 4.2 + 5.2: the same insertion under four engines ----
    println!("\n== Examples 4.2 / 5.2: insert (v4, u0), V* = {{u0}} ==");
    let mut engines: Vec<(&str, Box<dyn CoreMaintainer>)> = vec![
        ("Order (paper)", Box::new(OrderCore::new(g.clone(), 42))),
        ("Trav-2", Box::new(TraversalCore::new(g.clone(), 2))),
        ("SubCore", Box::new(SubCoreAlgo::new(g.clone()))),
        ("Recompute", Box::new(RecomputeCore::new(g.clone()))),
    ];
    for (name, engine) in engines.iter_mut() {
        let stats = engine.insert(pg.v(4), pg.u(0)).unwrap();
        println!(
            "  {name:<14} visited {:>5} vertices to find |V*| = {}",
            stats.visited, stats.changed
        );
        assert_eq!(engine.core_of(pg.u(0)), 2);
    }
    println!("  (the paper's counts: order 1, traversal 1,999, subcore = |sc| = 2,001)");

    // ---- Example 5.1: the k-order ----
    println!("\n== Example 5.1: the k-order ==");
    let order = OrderCore::new(g.clone(), 42);
    let o2 = order.level_order(2);
    let o3 = order.level_order(3);
    println!(
        "  |O_1| = {}, O_2 = {:?}, |O_3| = {}",
        order.level_order(1).len(),
        o2,
        o3.len()
    );
    println!(
        "  deg+(v in O_2) = {:?}  (Lemma 5.1: all <= 2)",
        o2.iter().map(|&v| order.deg_plus(v)).collect::<Vec<_>>()
    );
    // Transitivity of the order across levels:
    assert!(order.precedes(pg.u(0), pg.v(4)));
    assert!(order.precedes(pg.v(4), pg.v(6)));
    assert!(order.precedes(pg.u(0), pg.v(6)));
    println!("  u0 ⪯ v4 ⪯ v6 — transitivity holds across O_1, O_2, O_3");

    println!("\nEvery engine agrees, every claim of the examples checks out.");
}
