//! Sharded deployment: a `ShardRouter` fans one churn stream across
//! hash-partitioned shards — each with its own maintenance engine,
//! bounded queue, and journal — while a reader thread answers global
//! core queries from merged epoch snapshots and one shard crashes and
//! recovers mid-stream without the others noticing.
//!
//! Run with: `cargo run --release --example sharded_ingest`

use kcore::gen::{barabasi_albert, churn_stream};
use kcore::graph::HashShardMap;
use kcore::ingest::durability::DurabilityConfig;
use kcore::ingest::sources::churn_events;
use kcore::{IngestConfig, ShardRouter};
use std::sync::Arc;

const SHARDS: usize = 4;

fn main() {
    let base = barabasi_albert(20_000, 5, 42);
    println!(
        "base graph: {} vertices, {} edges across {SHARDS} shards",
        base.num_vertices(),
        base.num_edges()
    );

    let dir = std::env::temp_dir().join("kcore_sharded_ingest_example");
    std::fs::remove_dir_all(&dir).ok();
    let shard_dirs: Vec<_> = (0..SHARDS).map(|s| dir.join(format!("shard{s}"))).collect();
    for d in &shard_dirs {
        std::fs::create_dir_all(d).unwrap();
    }

    // Each shard gets its own journal + checkpoints: a crash takes down
    // one shard's writer, never the deployment.
    let map = Arc::new(HashShardMap::new(SHARDS));
    let mut router = ShardRouter::spawn_with(base.clone(), map, 7, |s| {
        IngestConfig::default()
            .max_batch(256)
            .queue_capacity(2048)
            .durable(DurabilityConfig::in_dir(&shard_dirs[s]).snapshot_every(64))
    })
    .expect("spawn shard router");

    // A reader holds merged cuts — one consistent cross-shard epoch at a
    // time — while the router keeps routing.
    let handle = router.subscribe();
    let done = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let done_reader = done.clone();
    let reader = std::thread::spawn(move || {
        let mut last_epoch = 0;
        let mut epochs_seen = 0usize;
        loop {
            let snap = handle.load();
            if snap.epoch > last_epoch {
                last_epoch = snap.epoch;
                epochs_seen += 1;
                println!(
                    "  reader: merged epoch {:>3} covers {:>6} events (shard epochs {:?}) — \
                     degeneracy {}, |{}-core| = {}",
                    snap.epoch,
                    snap.ops,
                    snap.shard_epochs,
                    snap.degeneracy,
                    snap.degeneracy,
                    snap.kcore_members(snap.degeneracy).len()
                );
            } else if done_reader.load(std::sync::atomic::Ordering::Acquire) {
                break epochs_seen;
            }
            std::thread::yield_now();
        }
    });

    // The producer: churn micro-batches routed by vertex ownership, a
    // merged cut every few batches. Halfway through, shard 1 "crashes"
    // (its writer dies mid-stream) — traffic owned by it parks in its
    // routed log, the other shards keep absorbing theirs — and the
    // durability ladder brings it back before the next cut.
    let batches = churn_stream(&base, 60, 96, 64, 99);
    let mut submitted = 0usize;
    for (i, batch) in batches.iter().enumerate() {
        for e in churn_events(batch) {
            router.submit(e).expect("router routes around down shards");
            submitted += 1;
        }
        if i == 29 {
            println!("  !! killing shard 1's writer mid-stream");
            router.abort_shard(1);
        }
        if i == 34 {
            let report = router.recover_shard(1).expect("durability ladder");
            println!("  !! shard 1 recovered — {report} — parked traffic re-submitted");
        }
        if (i + 1).is_multiple_of(5) && router.merged_cut().is_ok() {
            // Cuts while a shard is down are refused rather than torn;
            // readers simply keep the last consistent epoch.
        }
    }
    let final_cut = router.merged_cut().expect("final merged cut");
    let stats = router.stats();
    println!(
        "submitted {submitted} events; final merged epoch {} covers {} events, \
         {} cross-shard boundary edges; boundary repair: {} across {} cuts",
        final_cut.epoch, final_cut.ops, final_cut.boundary_edges, stats.repair, stats.cuts
    );
    // Router-level observability: cut counters, merged-cut phase latency
    // histograms, and the cross-shard lag gauge (max epoch spread).
    let obs = router.metrics().snapshot();
    println!(
        "router metrics: {} cuts, {} cross-shard events, lag {} epochs | \
         cut phases p50: barrier {:.1}us, replay {:.1}us, repair {:.1}us, publish {:.1}us",
        obs.counter("router_cuts_total").unwrap_or(0),
        obs.counter("router_cross_shard_events_total").unwrap_or(0),
        obs.gauge("router_cross_shard_lag").unwrap_or(0.0),
        obs.histogram("router_cut_barrier_ns")
            .map_or(0.0, |h| h.p50 as f64 / 1e3),
        obs.histogram("router_cut_union_replay_ns")
            .map_or(0.0, |h| h.p50 as f64 / 1e3),
        obs.histogram("router_cut_boundary_repair_ns")
            .map_or(0.0, |h| h.p50 as f64 / 1e3),
        obs.histogram("router_cut_publish_ns")
            .map_or(0.0, |h| h.p50 as f64 / 1e3),
    );
    router
        .validate()
        .expect("boundary-table + mirror invariants");

    done.store(true, std::sync::atomic::Ordering::Release);
    let epochs_seen = reader.join().unwrap();
    let (merged_report, per_shard) = router.shutdown();
    println!(
        "reader saw {epochs_seen} merged epochs; merged report: {} events over {} shards \
         ({} recoveries, final health {:?})",
        merged_report.events,
        per_shard.len(),
        merged_report.recoveries,
        merged_report.final_health
    );
    for (s, (report, engine)) in per_shard.iter().enumerate() {
        use kcore::maint::CoreMaintainer;
        println!(
            "  shard {s}: {:>6} events, {:>3} epochs, {:>6} edges held locally",
            report.events,
            report.epochs_published,
            engine.graph_ref().num_edges()
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}
