//! Dense-community tracking: keep a live view of the *innermost* core —
//! the densest nucleus of the network — while friendships appear and
//! disappear (the churn workload of the paper's Fig 12 stability test).
//!
//! Demonstrates mixed insert/remove maintenance and k-core extraction on
//! top of the maintained index.
//!
//! Run with: `cargo run --release --example dense_community_tracker`

use kcore::decomp::bucket::{kcore_subgraph, kcore_vertices};
use kcore::gen::sample::{EdgeSampler, Op};
use kcore::gen::{load_dataset, sample_edges, Scale};
use kcore::OrderCore;

fn main() {
    let ds = load_dataset("orkut", Scale::Tiny, 100);
    let full = ds.full_graph();
    println!(
        "network: {} members, {} ties",
        full.num_vertices(),
        full.num_edges()
    );

    // Remove a pool of edges to replay with churn (p = 0.2 removals).
    let pool = sample_edges(&full, 3000, 99);
    let mut base = full.clone();
    for &(u, v) in &pool {
        base.remove_edge(u, v).unwrap();
    }
    let mut engine = OrderCore::new(base, 5);
    let mut sampler = EdgeSampler::new(pool, 123);

    let mut step = 0usize;
    while let Some(Op::Insert(u, v)) = sampler.next_insert() {
        engine.insert_edge(u, v).unwrap();
        if let Some(Op::Remove(a, b)) = sampler.maybe_remove(0.2) {
            engine.remove_edge(a, b).unwrap();
        }
        step += 1;
        if step.is_multiple_of(600) {
            report(&engine, step);
        }
    }
    report(&engine, step);
}

fn report(engine: &OrderCore, step: usize) {
    let deepest = engine.cores().iter().max().copied().unwrap_or(0);
    let nucleus = kcore_vertices(engine.cores(), deepest);
    let sub = kcore_subgraph(engine.graph(), engine.cores(), deepest);
    let internal_edges = sub.num_edges();
    println!(
        "after {:>5} updates: innermost core k = {:>2}, nucleus of {:>3} members, \
         {:>4} internal ties (density {:.2})",
        step,
        deepest,
        nucleus.len(),
        internal_edges,
        if nucleus.len() > 1 {
            2.0 * internal_edges as f64 / (nucleus.len() as f64 * (nucleus.len() as f64 - 1.0))
        } else {
            0.0
        }
    );
}
