//! Streaming-ingest scenario: a writer thread maintains core numbers
//! under a live churn stream while reader threads answer "who is in the
//! engaged community right now?" from epoch snapshots — never blocking
//! the writer, never seeing a half-applied batch. A journal + checkpoint
//! make the stream survive a crash.
//!
//! Run with: `cargo run --release --example streaming_ingest`

use kcore::gen::{barabasi_albert, churn_stream};
use kcore::ingest::durability::DurabilityConfig;
use kcore::ingest::recover;
use kcore::ingest::sources::churn_events;
use kcore::{IngestConfig, IngestService, PlannerConfig};

fn main() {
    let base = barabasi_albert(20_000, 5, 42);
    println!(
        "base graph: {} vertices, {} edges",
        base.num_vertices(),
        base.num_edges()
    );

    let dir = std::env::temp_dir().join("kcore_streaming_ingest_example");
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    let durability = DurabilityConfig::in_dir(&dir).snapshot_every(64);

    let svc = IngestService::spawn_planned(
        base.clone(),
        7,
        IngestConfig::default()
            .max_batch(512)
            .queue_capacity(4096)
            .durable(durability.clone()),
    )
    .expect("spawn ingest service");

    // A reader thread polls snapshots while the stream flows: it holds a
    // consistent epoch for as long as it likes and is never blocked by
    // the writer's batch work.
    let handle = svc.snapshots();
    let done = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let done_reader = done.clone();
    let reader = std::thread::spawn(move || {
        let mut last_epoch = 0;
        let mut epochs_seen = 0usize;
        loop {
            let snap = handle.load();
            if snap.epoch > last_epoch {
                last_epoch = snap.epoch;
                epochs_seen += 1;
                if epochs_seen.is_multiple_of(10) {
                    println!(
                        "  reader: epoch {:>4} covers {:>6} events — degeneracy {}, |{}-core| = {}",
                        snap.epoch,
                        snap.ops,
                        snap.degeneracy,
                        snap.degeneracy,
                        snap.kcore_members(snap.degeneracy).len()
                    );
                }
            } else if done_reader.load(std::sync::atomic::Ordering::Acquire) {
                break epochs_seen;
            }
            std::thread::yield_now();
        }
    });

    // The producer: 200 churn micro-batches of mixed inserts/removals,
    // with blocking submission as the backpressure valve.
    let mut submitted = 0usize;
    for batch in churn_stream(&base, 200, 96, 64, 99) {
        for e in churn_events(&batch) {
            svc.submit(e).expect("writer alive");
            submitted += 1;
        }
    }
    let final_snap = svc.flush().expect("flush barrier");
    println!(
        "submitted {submitted} events; final epoch {} covers {} events",
        final_snap.epoch, final_snap.ops
    );
    // The writer's live metrics registry: counters, gauges, and the
    // per-flush stage-latency histograms, readable from any thread and
    // renderable as a Prometheus text exposition.
    let metrics = svc.metrics().expect("observability is on by default");
    let obs = metrics.snapshot();
    println!(
        "live metrics: {} events, {} batches, {} epochs | flush stages p99: \
         apply {:.1}us, journal {:.1}us, mirror {:.1}us, publish {:.1}us",
        obs.counter("ingest_events_total").unwrap_or(0),
        obs.counter("ingest_batches_total").unwrap_or(0),
        obs.counter("ingest_epochs_published_total").unwrap_or(0),
        obs.histogram("ingest_flush_apply_ns")
            .map_or(0.0, |h| h.p99 as f64 / 1e3),
        obs.histogram("ingest_flush_journal_ship_ns")
            .map_or(0.0, |h| h.p99 as f64 / 1e3),
        obs.histogram("ingest_flush_mirror_sync_ns")
            .map_or(0.0, |h| h.p99 as f64 / 1e3),
        obs.histogram("ingest_flush_publish_ns")
            .map_or(0.0, |h| h.p99 as f64 / 1e3),
    );
    let exposition = obs.render_text();
    println!(
        "Prometheus exposition sample ({} lines total):",
        exposition.lines().count()
    );
    for line in exposition
        .lines()
        .filter(|l| l.starts_with("ingest_health") || l.starts_with("planner_ewma_batched"))
        .take(3)
    {
        println!("  {line}");
    }
    let (report, engine) = svc.shutdown();
    done.store(true, std::sync::atomic::Ordering::Release);
    println!(
        "writer: {} batches, {} journal entries shipped, {} checkpoints",
        report.batches, report.entries_shipped, report.snapshots_persisted
    );
    // Publish-cost stats: snapshots are published copy-on-write, so each
    // epoch costs the chunks the flush dirtied — not an O(n) rebuild.
    println!(
        "publish cost: p50 {:.1}us per epoch, {} of {} x {} chunks copy-on-written \
         ({} tracked drains, {} full syncs)",
        report.publish.p50() as f64 / 1_000.0,
        report.chunks_copied,
        report.batches,
        report.mirror_chunks,
        report.tracked_drains,
        report.full_syncs,
    );
    // The planner's own story of the run: which strategies it chose and
    // the EWMA cost model it priced them with.
    println!("planner: {}", engine.planner_stats());
    let epochs_seen = reader.join().unwrap();
    println!("reader observed {epochs_seen} distinct epochs");

    // Crash-free restart proof: recover from journal + checkpoint and
    // compare against the live engine we just shut down. The report says
    // which ladder rung restored the state and exactly what was lost.
    let rec = recover(&durability, 1, PlannerConfig::default(), 512).expect("recover");
    assert_eq!(rec.engine.cores(), engine.cores());
    println!(
        "recovered {} events from {} — state identical",
        rec.next_seq,
        dir.display(),
    );
    println!("  recovery report: {}", rec.report);

    // Escalation proof: flip one byte of the newest checkpoint's payload
    // and recover again. Its CRC rejects it, the ladder falls back to
    // the older retained generation, and the journal replays the
    // difference — same state, one rung down.
    let mut bytes = std::fs::read(&durability.snapshot_path).unwrap();
    let at = bytes.len() - 1;
    bytes[at] ^= 0xFF;
    std::fs::write(&durability.snapshot_path, bytes).unwrap();
    let rec2 =
        recover(&durability, 1, PlannerConfig::default(), 512).expect("recover past corruption");
    assert_eq!(rec2.engine.cores(), engine.cores());
    println!("after corrupting the newest checkpoint — state identical");
    println!("  recovery report: {}", rec2.report);
    std::fs::remove_dir_all(&dir).ok();
}
