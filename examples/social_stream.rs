//! Social-stream scenario: a timeline of friendships arrives edge by
//! edge; after every batch we answer "who is in the engaged community?"
//! (the k-core) without ever recomputing from scratch — the motivating
//! workload of the paper's introduction.
//!
//! Run with: `cargo run --release --example social_stream`

use kcore::decomp::bucket::kcore_vertices;
use kcore::gen::load_dataset;
use kcore::gen::Scale;
use kcore::{CoreMaintainer, OrderCore, RecomputeCore};
use std::time::Instant;

const BATCH: usize = 500;

fn main() {
    // A Facebook-like temporal dataset: the stream is the latest edges.
    let ds = load_dataset("facebook", Scale::Small, 4 * BATCH);
    println!(
        "base network: {} users, {} friendships; replaying {} new friendships",
        ds.base.num_vertices(),
        ds.base.num_edges(),
        ds.stream.len()
    );

    let mut engine = OrderCore::new(ds.base.clone(), 7);
    let mut naive = RecomputeCore::new(ds.base.clone());

    for (i, batch) in ds.stream.chunks(BATCH).enumerate() {
        let t0 = Instant::now();
        let mut visited = 0usize;
        let mut changed = 0usize;
        for &(u, v) in batch {
            let s = engine.insert_edge(u, v).unwrap();
            visited += s.visited;
            changed += s.changed;
        }
        let incr = t0.elapsed();

        let t1 = Instant::now();
        for &(u, v) in batch {
            naive.insert(u, v).unwrap();
        }
        let full = t1.elapsed();
        assert_eq!(engine.cores(), naive.core_slice());

        // Community query: the 10-core = strongly engaged users.
        let engaged = kcore_vertices(engine.cores(), 10).len();
        let deepest = engine.cores().iter().max().copied().unwrap_or(0);
        println!(
            "batch {:>2}: maintained in {:>8.3?} (recompute {:>8.3?}, {:>5.1}x) | \
             visited {:>5}, changed {:>4} | 10-core size {:>5}, deepest core {}",
            i,
            incr,
            full,
            full.as_secs_f64() / incr.as_secs_f64().max(1e-9),
            visited,
            changed,
            engaged,
            deepest
        );
    }
}
