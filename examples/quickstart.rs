//! Quickstart: maintain core numbers of a small evolving graph and watch
//! `V*` stay local.
//!
//! Run with: `cargo run --release --example quickstart`

use kcore::graph::fixtures::PaperGraph;
use kcore::OrderCore;

fn main() {
    // The running example of the paper (Fig 3): two long chains in the
    // 1-core, one 2-subcore {v1..v5}, and two 3-subcores (4-cliques).
    let pg = PaperGraph::full();
    let mut cores = OrderCore::new(pg.graph.clone(), 42);

    println!(
        "graph: {} vertices, {} edges",
        cores.graph().num_vertices(),
        cores.graph().num_edges()
    );
    println!(
        "core numbers: u0 = {}, v1 = {}, v6 = {}",
        cores.core(pg.u(0)),
        cores.core(pg.v(1)),
        cores.core(pg.v(6))
    );

    // Insert the edge the paper analyses in Examples 4.2 / 5.2:
    // (v4, u0). Only u0's core number changes — and the order-based
    // algorithm discovers this by visiting a single vertex, while the
    // traversal algorithm would walk the whole 2,000-vertex chain.
    let stats = cores.insert_edge(pg.v(4), pg.u(0)).unwrap();
    println!(
        "\ninsert (v4, u0): visited {} vertex(es), updated {} core number(s)",
        stats.visited, stats.changed
    );
    println!("u0 is now in the {}-core", cores.core(pg.u(0)));

    // Undo it.
    let stats = cores.remove_edge(pg.v(4), pg.u(0)).unwrap();
    println!(
        "remove (v4, u0): visited {}, updated {} -> u0 back to core {}",
        stats.visited,
        stats.changed,
        cores.core(pg.u(0))
    );

    // Vertices can be added on the fly.
    let newcomer = cores.add_vertex();
    cores.insert_edge(newcomer, pg.v(6)).unwrap();
    cores.insert_edge(newcomer, pg.v(7)).unwrap();
    cores.insert_edge(newcomer, pg.v(8)).unwrap();
    println!(
        "\nnewcomer wired to 3 clique members: core = {}",
        cores.core(newcomer)
    );
    cores.insert_edge(newcomer, pg.v(9)).unwrap();
    println!(
        "fourth clique edge: core = {} (the 4-clique becomes a 4-core)",
        cores.core(newcomer)
    );
}
